//! End-to-end access benchmarks, one per stride family and strategy —
//! the Criterion rendition of the latency experiment: the *measured
//! simulated latency* is the figure of merit; the wall-clock numbers
//! here track the simulation cost of each configuration, which scales
//! with that latency.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use cfva_core::plan::{Planner, Strategy};
use cfva_core::{mapping::XorMatched, Stride, VectorSpec};
use cfva_memsim::{MemConfig, MemorySystem};

fn bench_family_sweep(c: &mut Criterion) {
    let planner = Planner::matched(XorMatched::new(3, 4).expect("valid"));
    let mem = MemConfig::new(3, 3).expect("valid");
    let buffered = MemConfig::new(3, 3)
        .expect("valid")
        .with_queues(2, 1)
        .expect("valid");

    let mut group = c.benchmark_group("family_sweep_L128");
    for x in 0..=5u32 {
        let stride = Stride::from_parts(3, x).expect("odd");
        let vec = VectorSpec::with_stride(16u64.into(), stride, 128).expect("valid");

        group.bench_function(BenchmarkId::new("canonical", x), |b| {
            b.iter(|| {
                let plan = planner
                    .plan(black_box(&vec), Strategy::Canonical)
                    .expect("plannable");
                MemorySystem::new(mem).run_plan(&plan).latency
            })
        });

        if planner.plan(&vec, Strategy::Subsequence).is_ok() {
            group.bench_function(BenchmarkId::new("subsequence_q2", x), |b| {
                b.iter(|| {
                    let plan = planner
                        .plan(black_box(&vec), Strategy::Subsequence)
                        .expect("plannable");
                    MemorySystem::new(buffered).run_plan(&plan).latency
                })
            });
        }

        if planner.plan(&vec, Strategy::ConflictFree).is_ok() {
            group.bench_function(BenchmarkId::new("replay", x), |b| {
                b.iter(|| {
                    let plan = planner
                        .plan(black_box(&vec), Strategy::ConflictFree)
                        .expect("plannable");
                    MemorySystem::new(mem).run_plan(&plan).latency
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_family_sweep);
criterion_main!(benches);
