//! End-to-end access benchmarks, one per stride family and strategy —
//! the Criterion rendition of the latency experiment: the *measured
//! simulated latency* is the figure of merit; the wall-clock numbers
//! here track the simulation cost of each configuration, which scales
//! with that latency.
//!
//! The `efficiency_sweep_400` group is the batch-engine acceptance
//! benchmark: the same 400-sample Section 5B efficiency sweep through
//! the naive per-call path (fresh `MemorySystem` + fresh plan per
//! sample) vs one reused [`BatchRunner`] session vs the parallel
//! [`BatchRunner::sweep`]. `tests/batch_engine_speedup.rs` asserts the
//! session path is ≥ 1.5× faster than the naive path.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use cfva_bench::runner::{self, BatchRunner};
use cfva_bench::workload::StrideSampler;
use cfva_core::plan::{Planner, Strategy};
use cfva_core::{mapping::XorMatched, Stride, VectorSpec};
use cfva_memsim::{MemConfig, MemorySystem};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_family_sweep(c: &mut Criterion) {
    let planner = Planner::matched(XorMatched::new(3, 4).expect("valid"));
    let mem = MemConfig::new(3, 3).expect("valid");
    let buffered = MemConfig::new(3, 3)
        .expect("valid")
        .with_queues(2, 1)
        .expect("valid");

    let mut group = c.benchmark_group("family_sweep_L128");
    for x in 0..=5u32 {
        let stride = Stride::from_parts(3, x).expect("odd");
        let vec = VectorSpec::with_stride(16u64.into(), stride, 128).expect("valid");

        group.bench_function(BenchmarkId::new("canonical", x), |b| {
            b.iter(|| {
                let plan = planner
                    .plan(black_box(&vec), Strategy::Canonical)
                    .expect("plannable");
                MemorySystem::new(mem).run_plan(&plan).latency
            })
        });

        if planner.plan(&vec, Strategy::Subsequence).is_ok() {
            group.bench_function(BenchmarkId::new("subsequence_q2", x), |b| {
                b.iter(|| {
                    let plan = planner
                        .plan(black_box(&vec), Strategy::Subsequence)
                        .expect("plannable");
                    MemorySystem::new(buffered).run_plan(&plan).latency
                })
            });
        }

        if planner.plan(&vec, Strategy::ConflictFree).is_ok() {
            group.bench_function(BenchmarkId::new("replay", x), |b| {
                b.iter(|| {
                    let plan = planner
                        .plan(black_box(&vec), Strategy::ConflictFree)
                        .expect("plannable");
                    MemorySystem::new(mem).run_plan(&plan).latency
                })
            });
        }
    }
    group.finish();
}

/// The 400-sample Section 5B efficiency sweep, three ways.
fn bench_efficiency_sweep(c: &mut Criterion) {
    const SAMPLES: u32 = 400;
    const LEN: u64 = 128;
    let mem = MemConfig::new(3, 3).expect("valid");
    let sampler = StrideSampler::new(10, 9);
    let make_planner = || Planner::matched(XorMatched::new(3, 4).expect("valid"));

    let mut group = c.benchmark_group("efficiency_sweep_400");

    // Naive: a fresh MemorySystem and a fresh plan for every sample —
    // the seed repository's per-call pattern.
    group.bench_function(BenchmarkId::new("naive_per_call", SAMPLES), |b| {
        let planner = make_planner();
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1992);
            runner::naive_simulated_efficiency(
                black_box(&planner),
                Strategy::Auto,
                mem,
                LEN,
                SAMPLES,
                &sampler,
                &mut rng,
            )
        })
    });

    // Batch: one session, all buffers reused.
    group.bench_function(BenchmarkId::new("batch_session", SAMPLES), |b| {
        let mut session = BatchRunner::new(make_planner(), mem);
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1992);
            session.simulated_efficiency(Strategy::Auto, LEN, SAMPLES, &sampler, &mut rng)
        })
    });

    // Batch + parallel sweep: the sweep points are per-seed chunks of
    // the sample budget, one worker session each.
    group.bench_function(BenchmarkId::new("batch_parallel_sweep", SAMPLES), |b| {
        let chunks: Vec<u64> = (0..8).collect();
        let per_chunk = SAMPLES / 8;
        b.iter(|| {
            let etas = BatchRunner::sweep(
                || BatchRunner::new(make_planner(), mem),
                &chunks,
                |session, &seed| {
                    let mut rng = StdRng::seed_from_u64(1992 + seed);
                    session.simulated_efficiency(Strategy::Auto, LEN, per_chunk, &sampler, &mut rng)
                },
            );
            etas.iter().sum::<f64>() / etas.len() as f64
        })
    });

    group.finish();
}

criterion_group!(benches, bench_family_sweep, bench_efficiency_sweep);
criterion_main!(benches);
