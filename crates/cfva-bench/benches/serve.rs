//! Service throughput: one fixed conflicted-stride mixed request
//! batch, pushed through the pooled service at 1, 2 and 4 workers,
//! against the serial baseline (the same requests on plain per-spec
//! `BatchRunner`s, no pool, no threads).
//!
//! One iteration = submit the whole batch, then reap every ticket —
//! i.e. the measured quantity is wall time per full batch, the
//! reciprocal of request throughput. The worker counts are fixed
//! (not `available_parallelism`) so the benchmark ids — and the
//! committed `BENCH_baseline.json` entries under CI's strict
//! `bench-compare` — are machine-independent.
//!
//! Reading the numbers: `workers_1` vs `serial` is the pool tax
//! (queue transfer + ticket wake-ups, amortised over ~200 µs of
//! simulation per batch); `workers_2`/`workers_4` over `workers_1` is
//! the parallel payoff, which requires actual cores — the committed
//! baseline comes from a single-core reference machine, where all
//! pool configurations are expected to tie with serial (the speedup
//! shows on multicore hosts). The pooled configurations submit with
//! `submit_uncached`: this group gates the *pool's* overhead, and with
//! the result cache consulted every iteration after the first would
//! measure nothing but cache hits.
//!
//! The `serve_cached` group measures the cache itself: one repeated
//! family-sweep request served from the warm result cache (`hit`)
//! against the same request forced down the pooled miss path
//! (`miss_uncached`). The gap is the O(1) serve path's payoff and is
//! expected to be well over 50×.
//!
//! The `serve_wire` group measures the TCP front door's tax on that
//! same warm-cache request: `loopback_hit` is one submit→wait round
//! trip over a `127.0.0.1` socket (encode + frame + two syscalls +
//! decode on top of the O(1) serve), and `loopback_pipelined` amortises
//! the round trip by keeping 16 requests in flight on one connection
//! before reaping — the protocol's out-of-order correlation is what
//! makes that pipelining legal.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cfva_bench::runner::BatchRunner;
use cfva_core::plan::Strategy;
use cfva_core::{Stride, VectorSpec};
use cfva_serve::api::{Estimator, Request, Response};
use cfva_serve::service::{Service, ServiceConfig};

/// The fixed mixed workload: conflicted strides (high families beat
/// on few modules) across three maps, plus batch and efficiency
/// requests — deterministic, so every configuration serves byte-for-
/// byte identical work.
fn workload() -> Vec<Request> {
    let specs = ["xor-matched:t=3,s=4", "skewed:m=3,d=1", "interleaved:m=3"];
    let mut requests = Vec::new();
    for (si, spec) in specs.iter().enumerate() {
        for x in 4..8u32 {
            for sigma in [1i64, 3, 5] {
                let stride = Stride::from_parts(sigma, x).expect("odd sigma");
                requests.push(Request::Measure {
                    spec: (*spec).into(),
                    vec: VectorSpec::with_stride((16 + 8 * si as u64).into(), stride, 2048)
                        .expect("valid"),
                    strategy: Strategy::Auto,
                });
            }
        }
        requests.push(Request::MeasureBatch {
            spec: (*spec).into(),
            accesses: (0..4)
                .map(|i| {
                    (
                        VectorSpec::new(8 * i, 48, 1024).expect("valid"),
                        Strategy::Auto,
                    )
                })
                .collect(),
        });
        requests.push(Request::Efficiency {
            spec: (*spec).into(),
            strategy: Strategy::Auto,
            len: 128,
            estimator: Estimator::Stratified {
                max_x: 7,
                per_family: 2,
            },
            seed: 1992 + si as u64,
        });
    }
    requests
}

/// The no-pool reference: the same requests served inline on warm
/// per-spec sessions (what a caller without the service would write).
fn serve_serially(sessions: &mut [(String, BatchRunner)], requests: &[Request]) -> u64 {
    let mut checksum = 0u64;
    for request in requests {
        let session = sessions
            .iter_mut()
            .find(|(spec, _)| spec == request.spec())
            .map(|(_, session)| session)
            .expect("workload specs are preloaded");
        match request {
            Request::Measure { vec, strategy, .. } => {
                checksum += session
                    .measure_owned(vec, *strategy)
                    .map_or(0, |s| s.latency);
            }
            Request::MeasureBatch { accesses, .. } => {
                checksum += session
                    .measure_batch(accesses)
                    .iter()
                    .flatten()
                    .map(|s| s.latency)
                    .sum::<u64>();
            }
            Request::Efficiency {
                len,
                estimator,
                seed,
                strategy,
                ..
            } => {
                use rand::{rngs::StdRng, SeedableRng};
                let mut rng = StdRng::seed_from_u64(*seed);
                let eta =
                    match estimator {
                        Estimator::Stratified { max_x, per_family } => session
                            .stratified_efficiency(*strategy, *len, *max_x, *per_family, &mut rng),
                        Estimator::MonteCarlo { .. } => unreachable!("not in this workload"),
                    };
                checksum += eta.to_bits() & 0xff;
            }
            Request::FamilySweep { .. } | Request::MultiStream { .. } => {
                unreachable!("not in this workload")
            }
        }
    }
    checksum
}

fn response_checksum(response: &Response) -> u64 {
    match response {
        Response::Measured(stats) => stats.as_ref().map_or(0, |s| s.latency),
        Response::Batch(all) => all.iter().flatten().map(|s| s.latency).sum(),
        Response::Efficiency(eta) => eta.to_bits() & 0xff,
        Response::FamilySweep(rows) => rows.iter().map(|r| r.latency).sum(),
        Response::MultiStream(outcome) => outcome.makespan + outcome.actual_conflicts,
        Response::Degraded { response, .. } => response_checksum(response),
    }
}

fn bench_serve_throughput(c: &mut Criterion) {
    let requests = workload();
    let mut group = c.benchmark_group("serve_mixed");

    group.bench_function(BenchmarkId::new("serial", requests.len()), |b| {
        let mut sessions: Vec<(String, BatchRunner)> =
            ["xor-matched:t=3,s=4", "skewed:m=3,d=1", "interleaved:m=3"]
                .iter()
                .map(|s| ((*s).to_string(), BatchRunner::from_spec_str(s).unwrap()))
                .collect();
        b.iter(|| serve_serially(&mut sessions, &requests));
    });

    // Fixed worker counts so the baseline ids match on any machine.
    for workers in [1usize, 2, 4] {
        let service = Service::new(
            ServiceConfig::with_workers(workers).queue_capacity(requests.len().max(16)),
        );
        group.bench_function(
            BenchmarkId::new(format!("workers_{workers}"), requests.len()),
            |b| {
                b.iter(|| {
                    // Uncached on purpose: gate the pool, not the cache.
                    let tickets: Vec<_> = requests
                        .iter()
                        .map(|r| {
                            service
                                .submit_uncached(r.clone())
                                .expect("queue sized to the batch")
                        })
                        .collect();
                    tickets
                        .into_iter()
                        .map(|t| response_checksum(&t.wait().expect("valid request")))
                        .sum::<u64>()
                })
            },
        );
        service.shutdown();
    }
    group.finish();
}

/// The O(1) serve path against the pooled miss path, same request: a
/// family sweep is many measurements with a tiny response, so `hit` is
/// a key reduction + clone while `miss_uncached` replans and resimulates
/// the whole sweep through the pool.
fn bench_serve_cached(c: &mut Criterion) {
    let request = Request::FamilySweep {
        spec: "xor-matched:t=3,s=4".into(),
        len: 4096,
        max_x: 10,
        sigma: 3,
    };
    let service = Service::new(ServiceConfig::with_workers(1));
    // Warm the single cache entry (and the worker's session).
    let warm = service
        .submit(request.clone())
        .expect("queue has room")
        .wait()
        .expect("valid request");
    let expected = response_checksum(&warm);

    let mut group = c.benchmark_group("serve_cached");
    group.bench_function(BenchmarkId::new("hit", 1), |b| {
        b.iter(|| {
            let checksum = response_checksum(
                &service
                    .submit(request.clone())
                    .expect("room")
                    .wait()
                    .expect("valid"),
            );
            assert_eq!(checksum, expected);
            checksum
        })
    });
    group.bench_function(BenchmarkId::new("miss_uncached", 1), |b| {
        b.iter(|| {
            let checksum = response_checksum(
                &service
                    .submit_uncached(request.clone())
                    .expect("room")
                    .wait()
                    .expect("valid"),
            );
            assert_eq!(checksum, expected);
            checksum
        })
    });
    group.finish();
    service.shutdown();
}

/// The graceful-degradation path under permanent overload: one worker,
/// a queue of one, fallback on. The worker is wedged behind big
/// uncached sweeps, so nearly every submission sheds to the caller-side
/// O(1) analytic estimate — the measured quantity is the cost of a
/// shed (parse + canonicalize + route + full-queue rejection + analytic
/// estimate), the latency a caller pays when the service degrades
/// instead of erroring.
fn bench_serve_degraded(c: &mut Criterion) {
    let service = Service::new(
        ServiceConfig::with_workers(1)
            .queue_capacity(1)
            .cache_capacity(0)
            .degraded_fallback(true),
    );
    let stride = Stride::from_parts(9, 6).expect("odd sigma");
    let vec = VectorSpec::with_stride(16u64.into(), stride, 4096).expect("valid");
    let request = Request::Measure {
        spec: "xor-matched:t=3,s=4".into(),
        vec,
        strategy: Strategy::Auto,
    };
    // Wedge the worker (and fill the 1-deep queue) with long sweeps.
    // Once they eventually finish, the queued-then-abandoned measure
    // copies from the loop below keep the worker saturated: executing
    // one costs far more than a shed, so the queue stays full.
    let wedges: Vec<_> = (0..2)
        .map(|_| {
            service
                .submit_uncached(Request::FamilySweep {
                    spec: "xor-matched:t=3,s=4".into(),
                    len: 1 << 18,
                    max_x: 12,
                    sigma: 9,
                })
                .expect("worker + queue absorb the wedges")
        })
        .collect();

    let mut group = c.benchmark_group("serve_degraded");
    group.bench_function(BenchmarkId::new("analytic_shed", 1), |b| {
        b.iter(|| loop {
            let ticket = service
                .submit(request.clone())
                .expect("degradation absorbs overload");
            if ticket.is_ready() {
                break response_checksum(&ticket.wait().expect("valid request"));
            }
            // The queue momentarily had room: this queued copy re-wedges
            // it. Abandon the ticket and shed the next submission.
            drop(ticket);
        })
    });
    group.finish();
    drop(wedges);
    service.shutdown();
}

/// The wire tax: the `serve_cached/hit` request over a loopback socket.
/// The service side is a warm O(1) cache hit, so the measured quantity
/// is what the TCP front door adds — JSON encode, length-prefixed
/// framing, kernel round trips and decode. `loopback_pipelined` keeps
/// 16 submissions in flight on the one connection before reaping,
/// amortising the per-round-trip latency across the batch.
fn bench_serve_wire(c: &mut Criterion) {
    use cfva_wire::client::WireClient;
    use cfva_wire::server::{WireServer, WireServerConfig};
    use std::sync::Arc;

    let request = Request::FamilySweep {
        spec: "xor-matched:t=3,s=4".into(),
        len: 4096,
        max_x: 10,
        sigma: 3,
    };
    let service = Arc::new(Service::new(ServiceConfig::with_workers(1)));
    let server = WireServer::bind(
        Arc::clone(&service),
        "127.0.0.1:0",
        WireServerConfig::default(),
    )
    .expect("loopback bind cannot fail");
    let mut client = WireClient::connect(server.local_addr()).expect("loopback connect");
    // Warm the single cache entry (and the worker's session) so every
    // measured iteration is a cache hit plus wire overhead.
    let warm = client.submit(request.clone()).expect("transport up");
    let expected = response_checksum(
        &client
            .wait(warm)
            .expect("transport up")
            .expect("valid request"),
    );

    let mut group = c.benchmark_group("serve_wire");
    group.bench_function(BenchmarkId::new("loopback_hit", 1), |b| {
        b.iter(|| {
            let ticket = client.submit(request.clone()).expect("transport up");
            let checksum =
                response_checksum(&client.wait(ticket).expect("transport up").expect("valid"));
            assert_eq!(checksum, expected);
            checksum
        })
    });
    group.bench_function(BenchmarkId::new("loopback_pipelined", 16), |b| {
        b.iter(|| {
            let tickets: Vec<_> = (0..16)
                .map(|_| client.submit(request.clone()).expect("transport up"))
                .collect();
            tickets
                .into_iter()
                .map(|t| response_checksum(&client.wait(t).expect("transport up").expect("valid")))
                .sum::<u64>()
        })
    });
    group.finish();
    drop(client);
    server.shutdown();
    service.shutdown();
}

/// Contended multi-stream serving: the same eight stride-2 streams on
/// `interleaved:m=3`, co-run two at a time, under naive FIFO wave
/// pairing against the conflict-aware planner. The arrival order is
/// adversarial for FIFO — neighbours share a module parity, so every
/// FIFO wave co-runs a clashing pair, while the predictor re-pairs
/// even with odd bases into conflict-free waves. The measured quantity
/// is wall time per full co-run; the *simulated* makespans are also
/// asserted (conflict-aware strictly below FIFO) so the bench fails
/// loudly if the scheduling win ever regresses.
fn bench_serve_contended(c: &mut Criterion) {
    use cfva_memsim::IssuePolicy;
    use cfva_serve::api::SchedulePlan;

    // Same-parity neighbours: FIFO width-2 waves are all conflicting.
    let streams: Vec<VectorSpec> = [0u64, 2, 1, 3, 4, 6, 5, 7]
        .into_iter()
        .map(|base| VectorSpec::new(base, 2, 2048).expect("valid"))
        .collect();
    let request = |schedule: SchedulePlan| Request::MultiStream {
        spec: "interleaved:m=3".into(),
        streams: streams.clone(),
        strategy: Strategy::Auto,
        policy: IssuePolicy::RoundRobin,
        schedule,
    };
    let service = Service::new(ServiceConfig::with_workers(1));
    let run = |schedule: SchedulePlan| match service
        .submit_uncached(request(schedule))
        .expect("queue has room")
        .wait()
        .expect("valid request")
    {
        Response::MultiStream(outcome) => outcome,
        other => panic!("unexpected response {other:?}"),
    };
    let fifo = run(SchedulePlan::FifoWaves { width: 2 });
    let aware = run(SchedulePlan::ConflictAware {
        width: 2,
        max_score_milli: 0,
    });
    assert!(
        aware.makespan < fifo.makespan,
        "conflict-aware co-runs ({}) must beat FIFO pairing ({})",
        aware.makespan,
        fifo.makespan
    );
    assert_eq!(aware.actual_conflicts, 0, "re-paired waves co-run CF");

    let mut group = c.benchmark_group("serve_contended");
    for (name, schedule) in [
        ("fifo", SchedulePlan::FifoWaves { width: 2 }),
        (
            "conflict_aware",
            SchedulePlan::ConflictAware {
                width: 2,
                max_score_milli: 0,
            },
        ),
    ] {
        group.bench_function(BenchmarkId::new(name, streams.len()), |b| {
            b.iter(|| {
                let outcome = run(schedule);
                outcome.makespan + outcome.actual_conflicts
            })
        });
    }
    group.finish();
    service.shutdown();
}

criterion_group!(
    benches,
    bench_serve_throughput,
    bench_serve_cached,
    bench_serve_wire,
    bench_serve_degraded,
    bench_serve_contended
);
criterion_main!(benches);
