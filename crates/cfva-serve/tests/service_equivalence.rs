//! The serving determinism contract: a response from the pooled
//! service is **bit-identical** to the same computation on a fresh
//! serial [`BatchRunner`] — whichever worker served it, however warm
//! its session cache, and whatever else was in flight.

use cfva_core::mapping::Registry;
use cfva_core::plan::Strategy;
use cfva_core::{Stride, VectorSpec};
use cfva_memsim::IssuePolicy;
use cfva_serve::api::{Estimator, Request, Response, SchedulePlan, ServeError};
use cfva_serve::runner::BatchRunner;
use cfva_serve::sched::SchedulerConfig;
use cfva_serve::service::{Service, ServiceConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Every registered coverage spec, as owned strings.
fn all_specs() -> Vec<String> {
    Registry::builtin()
        .all_specs()
        .iter()
        .map(|s| s.to_string())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pooled `Measure` == fresh serial `BatchRunner::measure_owned`,
    /// for random registered specs, strides and strategies.
    #[test]
    fn pooled_measure_bit_identical_to_fresh_serial_session(
        kind in 0usize..64,
        sigma_idx in 0i64..8,
        x in 0u32..8,
        base in 0u64..1_000_000,
        len_pow in 3u32..9,
        strategy_idx in 0usize..2,
    ) {
        let specs = all_specs();
        let spec = &specs[kind % specs.len()];
        let sigma = 2 * sigma_idx + 1;
        let stride = Stride::from_parts(sigma, x).expect("odd sigma");
        let vec = VectorSpec::with_stride(base.into(), stride, 1 << len_pow)
            .expect("bounded base");
        let strategy = [Strategy::Auto, Strategy::Canonical][strategy_idx];

        // Three workers and a shared warm service would also work, but
        // a per-case service additionally covers cold session builds
        // on every worker the router picks.
        let service = Service::new(ServiceConfig::with_workers(3));
        let ticket = service
            .submit(Request::Measure {
                spec: spec.clone(),
                vec,
                strategy,
            })
            .expect("queue has room");
        let pooled = match ticket.wait() {
            Ok(Response::Measured(stats)) => stats,
            other => panic!("unexpected response {other:?}"),
        };
        service.shutdown();

        let serial = BatchRunner::from_spec_str(spec)
            .expect("registered specs build")
            .measure_owned(&vec, strategy);
        prop_assert_eq!(pooled, serial, "{}: {} {}", spec, vec, strategy);
    }

    /// Scheduler on ≡ scheduler off ≡ fresh serial session, bit for
    /// bit, for every registered spec: the conflict-aware admission
    /// batcher only regroups and reorders executions — responses are
    /// order-independent, so none of them may change.
    #[test]
    fn scheduler_on_off_and_serial_are_bit_identical(
        kind in 0usize..64,
        seed in 0u64..1024,
    ) {
        let specs = all_specs();
        let spec = &specs[kind % specs.len()];
        let mut rng = StdRng::seed_from_u64(seed);
        // A mix of spread and clustered strides, so flushes see both
        // compatible and conflicting window members.
        let mut streams = Vec::new();
        for _ in 0..6 {
            let sigma = 2 * rng.gen_range(0i64..8) + 1;
            let x = rng.gen_range(0u32..10);
            let stride = Stride::from_parts(sigma, x).expect("odd sigma");
            let vec = VectorSpec::with_stride(rng.gen_range(0u64..1024).into(), stride, 64)
                .expect("bounded base");
            streams.push(vec);
        }
        // Caches off on both sides so every request actually executes
        // (and, on the scheduled side, actually rides the window).
        let scheduled = Service::new(
            ServiceConfig::with_workers(2).cache_capacity(0).scheduler(SchedulerConfig {
                window: 4,
                batch_width: 2,
                max_score_milli: 100,
            }),
        );
        let plain = Service::new(ServiceConfig::with_workers(2).cache_capacity(0));
        let mut serial = BatchRunner::from_spec_str(spec).expect("registered specs build");
        let submit = |service: &Service, vec: &VectorSpec| {
            service
                .submit(Request::Measure {
                    spec: spec.clone(),
                    vec: *vec,
                    strategy: Strategy::Auto,
                })
                .expect("queue has room")
        };
        let on: Vec<_> = streams.iter().map(|vec| submit(&scheduled, vec)).collect();
        let off: Vec<_> = streams.iter().map(|vec| submit(&plain, vec)).collect();
        for ((vec, with), without) in streams.iter().zip(on).zip(off) {
            // `wait` flushes the window first, so a parked request can
            // never deadlock its own caller.
            let a = with.wait();
            let b = without.wait();
            prop_assert_eq!(&a, &b, "{}: {}", spec, vec);
            let expected = Ok(Response::Measured(serial.measure_owned(vec, Strategy::Auto)));
            prop_assert_eq!(&a, &expected, "{}: {}", spec, vec);
        }
        scheduled.shutdown();
        plain.shutdown();
    }
}

#[test]
fn warm_sessions_stay_bit_identical_across_many_requests() {
    // One service, many requests per spec: later requests hit cached
    // sessions whose scratch buffers served other strides in between —
    // reuse must not leak state into results.
    let specs = all_specs();
    let service = Service::new(ServiceConfig::with_workers(2).queue_capacity(1024));
    let mut rng = StdRng::seed_from_u64(1992);

    let mut cases = Vec::new();
    for round in 0..6 {
        for spec in &specs {
            let sigma = 2 * rng.gen_range(0i64..8) + 1;
            let x = rng.gen_range(0u32..7);
            let stride = Stride::from_parts(sigma, x).expect("odd sigma");
            let vec = VectorSpec::with_stride(
                rng.gen_range(0u64..1 << 20).into(),
                stride,
                64 << (round % 3),
            )
            .expect("bounded base");
            let ticket = service
                .submit(Request::Measure {
                    spec: spec.clone(),
                    vec,
                    strategy: Strategy::Auto,
                })
                .expect("queue has room");
            cases.push((spec.clone(), vec, ticket));
        }
    }

    let mut serial_sessions: std::collections::HashMap<String, BatchRunner> = specs
        .iter()
        .map(|s| (s.clone(), BatchRunner::from_spec_str(s).expect("builds")))
        .collect();
    for (spec, vec, ticket) in cases {
        let pooled = match ticket.wait() {
            Ok(Response::Measured(stats)) => stats,
            other => panic!("unexpected response {other:?}"),
        };
        let serial = serial_sessions
            .get_mut(&spec)
            .expect("session exists")
            .measure_owned(&vec, Strategy::Auto);
        assert_eq!(pooled, serial, "{spec}: {vec}");
    }
    service.shutdown();
}

#[test]
fn batch_and_sweep_and_efficiency_match_direct_session_calls() {
    let spec = "xor-matched:t=3,s=4";
    let service = Service::new(ServiceConfig::with_workers(2));
    let mut direct = BatchRunner::from_spec_str(spec).expect("builds");

    // MeasureBatch == measure_batch.
    let accesses: Vec<(VectorSpec, Strategy)> = [(16u64, 12i64), (0, 16), (7, 96), (3, 160)]
        .into_iter()
        .map(|(base, stride)| {
            (
                VectorSpec::new(base, stride, 128).expect("valid"),
                Strategy::Auto,
            )
        })
        .collect();
    let ticket = service
        .submit(Request::MeasureBatch {
            spec: spec.into(),
            accesses: accesses.clone(),
        })
        .expect("room");
    assert_eq!(
        ticket.wait(),
        Ok(Response::Batch(direct.measure_batch(&accesses)))
    );

    // FamilySweep rows == per-family direct measurements.
    let ticket = service
        .submit(Request::FamilySweep {
            spec: spec.into(),
            len: 64,
            max_x: 5,
            sigma: 3,
        })
        .expect("room");
    let rows = match ticket.wait() {
        Ok(Response::FamilySweep(rows)) => rows,
        other => panic!("unexpected response {other:?}"),
    };
    assert_eq!(rows.len(), 6);
    for (x, row) in rows.iter().enumerate() {
        let stride = Stride::from_parts(3, x as u32).expect("odd");
        let vec = VectorSpec::with_stride(16u64.into(), stride, 64).expect("valid");
        let stats = direct
            .measure_owned(&vec, Strategy::Auto)
            .expect("auto plans");
        assert_eq!(row.x, x as u32);
        assert_eq!(row.stride, stride.get());
        assert_eq!(row.latency, stats.latency);
        assert_eq!(row.conflicts, stats.conflicts);
        assert_eq!(row.stall_cycles, stats.stall_cycles);
        assert_eq!(row.cycles_per_element, direct.cycles_per_element(&stats));
    }

    // Efficiency == the session estimator with the same seed.
    for (estimator, expected) in [
        (
            Estimator::Stratified {
                max_x: 6,
                per_family: 3,
            },
            direct.stratified_efficiency(Strategy::Auto, 64, 6, 3, &mut StdRng::seed_from_u64(7)),
        ),
        (
            Estimator::MonteCarlo {
                samples: 50,
                max_x: 8,
                max_sigma: 9,
            },
            direct.simulated_efficiency(
                Strategy::Auto,
                64,
                50,
                &cfva_serve::workload::StrideSampler::new(8, 9),
                &mut StdRng::seed_from_u64(7),
            ),
        ),
    ] {
        let ticket = service
            .submit(Request::Efficiency {
                spec: spec.into(),
                strategy: Strategy::Auto,
                len: 64,
                estimator,
                seed: 7,
            })
            .expect("room");
        let eta = match ticket.wait() {
            Ok(Response::Efficiency(eta)) => eta,
            other => panic!("unexpected response {other:?}"),
        };
        assert_eq!(eta.to_bits(), expected.to_bits(), "{estimator:?}");
    }
    service.shutdown();
}

#[test]
fn overloaded_burst_rejects_typed_and_every_accepted_ticket_resolves() {
    // One worker pinned down by a heavy request, a queue of two, and a
    // burst: some submissions MUST come back Overloaded (typed, with
    // the observed depth), and everything accepted must still resolve.
    let service = Service::new(ServiceConfig::with_workers(1).queue_capacity(2));
    let heavy = service
        .submit(Request::Efficiency {
            spec: "xor-matched:t=3,s=4".into(),
            strategy: Strategy::Auto,
            len: 512,
            estimator: Estimator::MonteCarlo {
                samples: 4_000,
                max_x: 10,
                max_sigma: 15,
            },
            seed: 3,
        })
        .expect("room");

    let mut accepted = Vec::new();
    let mut overloads = 0u32;
    for i in 0..200u64 {
        match service.submit(Request::Measure {
            spec: "xor-matched:t=3,s=4".into(),
            vec: VectorSpec::new(i, 12, 64).expect("valid"),
            strategy: Strategy::Auto,
        }) {
            Ok(ticket) => accepted.push(ticket),
            Err(ServeError::Overloaded {
                queue_depth,
                capacity,
            }) => {
                assert_eq!(capacity, 2);
                assert!(queue_depth >= capacity, "refused below the bound");
                overloads += 1;
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    assert!(
        overloads > 0,
        "a 200-request burst against a stalled queue of 2 must overflow"
    );
    for ticket in accepted {
        assert!(matches!(ticket.wait(), Ok(Response::Measured(Some(_)))));
    }
    assert!(matches!(heavy.wait(), Ok(Response::Efficiency(_))));
    service.shutdown();
}

#[test]
fn shutdown_drains_in_flight_service_requests() {
    let service = Service::new(ServiceConfig::with_workers(2).queue_capacity(256));
    let tickets: Vec<_> = (0..40u64)
        .map(|i| {
            service
                .submit(Request::Measure {
                    spec: "skewed:m=3,d=1".into(),
                    vec: VectorSpec::new(i, 8, 256).expect("valid"),
                    strategy: Strategy::Auto,
                })
                .expect("room")
        })
        .collect();
    service.shutdown();
    for mut ticket in tickets {
        let result = ticket
            .poll()
            .expect("shutdown drained, so the response must be ready");
        assert!(matches!(result, Ok(Response::Measured(Some(_)))));
    }
}

#[test]
fn spec_and_request_errors_reject_synchronously_and_typed() {
    let service = Service::new(ServiceConfig::with_workers(1));
    // Unparseable spec string: a submit-side `ServeError::Spec`.
    let bad_spec = service.submit(Request::FamilySweep {
        spec: ":::not a spec:::".into(),
        len: 64,
        max_x: 2,
        sigma: 3,
    });
    assert!(matches!(bad_spec, Err(ServeError::Spec(_))));
    // Even sigma: a submit-side `ServeError::Request`.
    let bad_sigma = service.submit(Request::FamilySweep {
        spec: "xor-matched:t=3,s=4".into(),
        len: 64,
        max_x: 2,
        sigma: 4,
    });
    assert!(matches!(bad_sigma, Err(ServeError::Request(_))));
    service.shutdown();
}

#[test]
fn submits_after_shutdown_are_refused_as_shutting_down() {
    let service = Service::new(ServiceConfig::with_workers(1));
    service.shutdown();
    let refused = service.submit(Request::Measure {
        spec: "interleaved:m=3".into(),
        vec: VectorSpec::new(0, 1, 16).expect("valid"),
        strategy: Strategy::Auto,
    });
    assert!(matches!(refused, Err(ServeError::ShuttingDown)));
}

#[test]
fn exhausted_retries_resolve_worker_panicked_with_the_message() {
    use cfva_serve::fault::FaultPlan;
    use std::sync::Arc;
    // A panic injected at submission 0 with retries disabled: the
    // ticket resolves the typed error, the worker survives, and the
    // service keeps serving bit-identically.
    let plan = Arc::new(FaultPlan::new().panic_at(0));
    let service = Service::new(
        ServiceConfig::with_workers(1)
            .max_retries(0)
            .fault_plan(plan),
    );
    let vec = VectorSpec::new(0, 3, 64).expect("valid");
    let doomed = service
        .submit(Request::Measure {
            spec: "interleaved:m=3".into(),
            vec,
            strategy: Strategy::Auto,
        })
        .expect("room");
    match doomed.wait() {
        Err(ServeError::WorkerPanicked { attempts, message }) => {
            assert_eq!(attempts, 1);
            assert!(message.contains("injected fault"), "{message}");
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    // The follow-up request (no fault scheduled) matches a fresh
    // serial session exactly.
    let vec = VectorSpec::new(0, 3, 64).expect("valid");
    let served = service
        .submit(Request::Measure {
            spec: "interleaved:m=3".into(),
            vec,
            strategy: Strategy::Auto,
        })
        .expect("room")
        .wait()
        .expect("serves");
    let mut serial =
        BatchRunner::from_spec(&"interleaved:m=3".parse().expect("valid")).expect("builds");
    let vec = VectorSpec::new(0, 3, 64).expect("valid");
    assert_eq!(
        served,
        Response::Measured(serial.measure_owned(&vec, Strategy::Auto))
    );
    service.shutdown();
}

#[test]
fn deadline_and_degraded_responses_stay_equivalent_to_their_sources() {
    use std::time::Duration;
    // `ServeError::DeadlineExceeded`: a zero budget against a wedged
    // worker resolves typed, never blocks.
    let service = Service::new(ServiceConfig::with_workers(1).queue_capacity(8));
    let wedge = service
        .submit_uncached(Request::FamilySweep {
            spec: "xor-matched:t=3,s=4".into(),
            len: 65536,
            max_x: 8,
            sigma: 7,
        })
        .expect("room");
    let vec = VectorSpec::new(0, 5, 64).expect("valid");
    let budgeted = service
        .submit_with_budget(
            Request::Measure {
                spec: "xor-matched:t=3,s=4".into(),
                vec,
                strategy: Strategy::Auto,
            },
            Duration::ZERO,
        )
        .expect("room");
    assert!(matches!(
        budgeted.wait(),
        Err(ServeError::DeadlineExceeded { .. })
    ));
    wedge.wait().expect("the wedge itself serves normally");
    service.shutdown();

    // `Response::Degraded`: a saturated opted-in service sheds with a
    // flagged analytic estimate whose shape matches the full path's.
    let shedding = Service::new(
        ServiceConfig::with_workers(1)
            .queue_capacity(1)
            .cache_capacity(0)
            .degraded_fallback(true),
    );
    let wedges: Vec<_> = (0..2)
        .map(|i| {
            shedding
                .submit(Request::FamilySweep {
                    spec: "xor-matched:t=3,s=4".into(),
                    len: 65536,
                    max_x: 8,
                    sigma: 2 * i + 1,
                })
                .expect("worker + queue absorb the first two")
        })
        .collect();
    let vec = VectorSpec::new(0, 5, 64).expect("valid");
    let shed = shedding
        .submit(Request::Measure {
            spec: "xor-matched:t=3,s=4".into(),
            vec,
            strategy: Strategy::Auto,
        })
        .expect("degradation absorbs the overflow")
        .wait()
        .expect("serves");
    match shed {
        Response::Degraded { response, .. } => {
            assert!(matches!(*response, Response::Measured(Some(_))));
        }
        // The wedge cleared between submissions; the full path answered.
        Response::Measured(Some(_)) => {}
        other => panic!("unexpected response {other:?}"),
    }
    for w in wedges {
        w.wait().expect("wedges serve normally");
    }
    shedding.shutdown();

    // When the analytic estimate claims exactness, its aggregates are
    // bit-identical to the full simulation the non-degraded path would
    // run.
    let mut serial =
        BatchRunner::from_spec(&"xor-matched:t=3,s=4".parse().expect("valid")).expect("builds");
    let stride = Stride::from_parts(1, 0).expect("odd");
    let vec = VectorSpec::with_stride(0u64.into(), stride, 256).expect("valid");
    if let Some(est) = serial.analytic(&vec, Strategy::Auto) {
        if est.exact {
            let full = serial
                .measure_owned(&vec, Strategy::Auto)
                .expect("auto always plans");
            assert_eq!(
                (est.latency, est.stall_cycles, est.conflicts),
                (full.latency, full.stall_cycles, full.conflicts),
                "an exact Degraded estimate must match the full run"
            );
        }
    }
}

#[test]
fn multi_stream_conflict_aware_beats_fifo_and_reconciles_with_serial() {
    // interleaved:m=3, stride 2: even bases cover the even modules,
    // odd bases the odd ones. Arrival order [0, 2, 1, 3] makes naive
    // FIFO pairing co-run same-parity (conflicting) neighbours, while
    // the conflict-aware planner re-pairs the disjoint ones.
    let spec = "interleaved:m=3";
    let streams: Vec<VectorSpec> = [0u64, 2, 1, 3]
        .into_iter()
        .map(|base| VectorSpec::new(base, 2, 64).expect("valid"))
        .collect();
    let service = Service::new(ServiceConfig::with_workers(1).cache_capacity(0));
    let run = |schedule: SchedulePlan| {
        let ticket = service
            .submit(Request::MultiStream {
                spec: spec.into(),
                streams: streams.clone(),
                strategy: Strategy::Auto,
                policy: IssuePolicy::RoundRobin,
                schedule,
            })
            .expect("queue has room");
        match ticket.wait() {
            Ok(Response::MultiStream(outcome)) => outcome,
            other => panic!("unexpected response {other:?}"),
        }
    };

    let fifo = run(SchedulePlan::FifoWaves { width: 2 });
    let aware = run(SchedulePlan::ConflictAware {
        width: 2,
        max_score_milli: 0,
    });

    // Internal consistency of each outcome.
    for (label, outcome) in [("fifo", &fifo), ("aware", &aware)] {
        assert_eq!(outcome.per_stream.len(), streams.len(), "{label}");
        assert_eq!(
            outcome.makespan,
            outcome.wave_makespans.iter().sum::<u64>(),
            "{label}: makespan is the sum of its waves"
        );
        assert_eq!(
            outcome.actual_conflicts,
            outcome.per_stream.iter().map(|s| s.conflicts).sum::<u64>(),
            "{label}: conflicts aggregate over streams"
        );
        for summary in &outcome.per_stream {
            assert!(
                (summary.wave as usize) < outcome.wave_makespans.len(),
                "{label}: wave id in range"
            );
            assert_eq!(summary.elements, 64, "{label}");
        }
    }

    // The predictor steered the planner to conflict-free pairs; FIFO
    // co-ran the clashing ones.
    assert_eq!(aware.actual_conflicts, 0, "re-paired waves co-run CF");
    assert_eq!(aware.predicted_conflicts_milli, 0);
    assert!(fifo.actual_conflicts > 0, "FIFO pairs same-parity streams");
    assert!(fifo.predicted_conflicts_milli > 0);
    assert!(
        aware.makespan < fifo.makespan,
        "conflict-aware {} must beat FIFO {}",
        aware.makespan,
        fifo.makespan
    );

    // The sequential baseline is exactly what a serial session measures
    // one stream at a time.
    let mut serial = BatchRunner::from_spec_str(spec).expect("builds");
    let solo: u64 = streams
        .iter()
        .map(|vec| {
            serial
                .measure_owned(vec, Strategy::Auto)
                .expect("auto always plans")
                .latency
        })
        .sum();
    assert_eq!(fifo.sequential_baseline, solo);
    assert_eq!(aware.sequential_baseline, solo);
    // And co-running disjoint pairs strictly beats running them one by
    // one — the throughput win the batcher is built around.
    assert!(aware.makespan < solo, "co-run CF pairs beat sequential");
    service.shutdown();
}

#[test]
fn scheduler_stats_expose_every_counter_in_one_snapshot() {
    // Exercise the admission window, the FIFO fallback path and a
    // MultiStream co-run, then check the full `ServiceStats` snapshot
    // field by field.
    let service = Service::new(ServiceConfig::with_workers(1).cache_capacity(0).scheduler(
        SchedulerConfig {
            window: 2,
            batch_width: 2,
            max_score_milli: 1_000_000,
        },
    ));
    // Two predictable measurements fill the window and flush as one
    // composite batch.
    let batched: Vec<_> = [0u64, 1]
        .into_iter()
        .map(|base| {
            service
                .submit(Request::Measure {
                    spec: "interleaved:m=3".into(),
                    vec: VectorSpec::new(base, 2, 64).expect("valid"),
                    strategy: Strategy::Auto,
                })
                .expect("queue has room")
        })
        .collect();
    for ticket in batched {
        assert!(matches!(ticket.wait(), Ok(Response::Measured(Some(_)))));
    }
    // A partnerless entry flushed alone degrades to FIFO submission.
    let vec = VectorSpec::new(0, 3, 64).expect("valid");
    let fell_back = service
        .submit(Request::Measure {
            spec: "interleaved:m=3".into(),
            vec,
            strategy: Strategy::Auto,
        })
        .expect("queue has room");
    service.flush();
    assert!(matches!(fell_back.wait(), Ok(Response::Measured(Some(_)))));
    // A contended MultiStream co-run feeds the predicted/actual pair.
    let outcome = service
        .submit(Request::MultiStream {
            spec: "interleaved:m=3".into(),
            streams: vec![
                VectorSpec::new(0, 2, 64).expect("valid"),
                VectorSpec::new(2, 2, 64).expect("valid"),
            ],
            strategy: Strategy::Auto,
            policy: IssuePolicy::RoundRobin,
            schedule: SchedulePlan::Together,
        })
        .expect("queue has room")
        .wait();
    let outcome = match outcome {
        Ok(Response::MultiStream(outcome)) => outcome,
        other => panic!("unexpected response {other:?}"),
    };
    assert!(outcome.actual_conflicts > 0, "same-parity co-run conflicts");

    let stats = service.stats();
    assert_eq!(stats.queue_depth, 0, "drained");
    assert_eq!(stats.in_flight, 0, "all tickets resolved");
    assert!(stats.cache.is_none(), "cache disabled at capacity 0");
    assert_eq!(stats.retries, 0);
    assert_eq!(stats.restarts, 0);
    assert_eq!(stats.deadline_exceeded, 0);
    assert_eq!(stats.degraded, 0);
    assert_eq!(stats.faults_injected, 0);
    assert!(stats.scheduler_batches >= 1, "the full window batched");
    assert!(stats.scheduler_batched >= 2, "both members rode the batch");
    assert_eq!(stats.scheduler_window_occupancy, 0, "window flushed");
    assert_eq!(
        stats.scheduler_predicted_conflicts_milli > 0,
        stats.scheduler_actual_conflicts > 0,
        "the co-run was predicted to conflict and did"
    );
    assert!(stats.scheduler_actual_conflicts >= outcome.actual_conflicts);
    // No wire front end is attached to this service, so its snapshot
    // reports the wire counters as zero; the live values are asserted
    // in cfva-wire's equivalence suite.
    assert_eq!(stats.wire_connections, 0, "no wire front end attached");
    assert_eq!(stats.wire_rejections, 0);
    assert_eq!(stats.wire_in_flight, 0);
    service.shutdown();
    let drained = service.stats();
    assert_eq!(drained.scheduler_window_occupancy, 0);
    assert!(
        drained.scheduler_fifo_fallbacks >= 1,
        "partnerless flushes degrade to FIFO"
    );
}
