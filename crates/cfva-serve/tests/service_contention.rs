//! The throughput-under-contention contract: on an adversarial
//! arrival order, the conflict-aware wave planner must beat naive FIFO
//! pairing by a real margin (≥ 1.3× in simulated makespan — measured
//! ≈ 2× on this workload), and co-running predicted-disjoint streams
//! must beat running them sequentially. These are the acceptance
//! numbers behind the `serve_contended` bench; this test pins them so
//! a scheduling regression fails CI even on noisy machines where
//! wall-clock benches cannot.

use cfva_core::plan::Strategy;
use cfva_core::VectorSpec;
use cfva_memsim::IssuePolicy;
use cfva_serve::api::{Request, Response, SchedulePlan};
use cfva_serve::sched::SchedulerConfig;
use cfva_serve::service::{Service, ServiceConfig};

/// Eight stride-2 streams on `interleaved:m=3` (eight modules): even
/// bases cover the even modules, odd bases the odd ones. Neighbours in
/// this order share a parity, so FIFO width-2 waves all clash while a
/// re-pairing planner can make every wave conflict-free.
fn adversarial_streams(len: u64) -> Vec<VectorSpec> {
    [0u64, 2, 1, 3, 4, 6, 5, 7]
        .into_iter()
        .map(|base| VectorSpec::new(base, 2, len).expect("valid"))
        .collect()
}

fn co_run(service: &Service, streams: &[VectorSpec], schedule: SchedulePlan) -> (u64, u64, u64) {
    let outcome = match service
        .submit_uncached(Request::MultiStream {
            spec: "interleaved:m=3".into(),
            streams: streams.to_vec(),
            strategy: Strategy::Auto,
            policy: IssuePolicy::RoundRobin,
            schedule,
        })
        .expect("queue has room")
        .wait()
    {
        Ok(Response::MultiStream(outcome)) => outcome,
        other => panic!("unexpected response {other:?}"),
    };
    (
        outcome.makespan,
        outcome.sequential_baseline,
        outcome.actual_conflicts,
    )
}

#[test]
fn conflict_aware_beats_fifo_by_at_least_1_3x() {
    let service = Service::new(ServiceConfig::with_workers(1));
    for len in [256u64, 1024, 4096] {
        let streams = adversarial_streams(len);
        let (fifo, _, fifo_conflicts) =
            co_run(&service, &streams, SchedulePlan::FifoWaves { width: 2 });
        let (aware, sequential, aware_conflicts) = co_run(
            &service,
            &streams,
            SchedulePlan::ConflictAware {
                width: 2,
                max_score_milli: 0,
            },
        );
        // Throughput is work over makespan; same work, so the ratio of
        // makespans IS the throughput ratio. Integer-exact 1.3× bound.
        assert!(
            aware * 13 <= fifo * 10,
            "len {len}: conflict-aware makespan {aware} must be ≥1.3× better than FIFO {fifo}"
        );
        assert_eq!(aware_conflicts, 0, "len {len}: re-paired waves are CF");
        assert!(fifo_conflicts > 0, "len {len}: FIFO co-runs clashing pairs");
        // And the point of co-running at all: conflict-free pairs beat
        // one-at-a-time sequential service.
        assert!(
            aware < sequential,
            "len {len}: co-run {aware} must beat sequential {sequential}"
        );
    }
    service.shutdown();
}

#[test]
fn admission_batcher_pairs_disjoint_requests_and_stays_correct() {
    // The same adversarial arrival order through the *admission
    // window*: the batcher must form composite batches (it saw
    // predictable, disjoint-scorable requests) and every response must
    // still be exactly what a scheduler-less service returns.
    let streams = adversarial_streams(512);
    let scheduled = Service::new(ServiceConfig::with_workers(2).cache_capacity(0).scheduler(
        SchedulerConfig {
            window: 4,
            batch_width: 2,
            max_score_milli: 0,
        },
    ));
    let plain = Service::new(ServiceConfig::with_workers(2).cache_capacity(0));
    let submit = |service: &Service, vec: VectorSpec| {
        service
            .submit(Request::Measure {
                spec: "interleaved:m=3".into(),
                vec,
                strategy: Strategy::Auto,
            })
            .expect("queue has room")
    };
    let on: Vec<_> = streams.iter().map(|v| submit(&scheduled, *v)).collect();
    let off: Vec<_> = streams.iter().map(|v| submit(&plain, *v)).collect();
    scheduled.flush();
    for (with, without) in on.into_iter().zip(off) {
        assert_eq!(with.wait(), without.wait());
    }
    let stats = scheduled.stats();
    assert!(
        stats.scheduler_batches >= 1,
        "disjoint-scorable windows must batch, got {stats:?}"
    );
    assert_eq!(stats.scheduler_window_occupancy, 0, "flush drained");
    scheduled.shutdown();
    plain.shutdown();
}
