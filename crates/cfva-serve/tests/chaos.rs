//! The chaos contract: under any seeded [`FaultPlan`] schedule —
//! worker kills, job panics, queue-pressure bursts, cache poisoning,
//! injected delays — the hardened service keeps every promise it makes
//! under fair weather:
//!
//! * every **accepted** ticket resolves (no caller is ever stranded);
//! * shutdown still drains and joins;
//! * responses stay **bit-identical** to a fault-free serial run
//!   (recovery is invisible in the data, not just "mostly works");
//! * the result cache stays equivalent to no cache at all;
//! * a poisoned ticket slot (a re-raised job panic) never leaks to
//!   unrelated requests.
//!
//! The fixed seeds exercised here are the same ones CI's chaos-smoke
//! step runs in release mode.

use std::sync::Arc;
use std::time::Duration;

use cfva_core::plan::Strategy;
use cfva_core::{Stride, VectorSpec};
use cfva_serve::api::{Request, Response, ServeError};
use cfva_serve::fault::FaultPlan;
use cfva_serve::pool::Pool;
use cfva_serve::runner::BatchRunner;
use cfva_serve::service::{Service, ServiceConfig, ServiceStats};
use proptest::prelude::*;

/// The seeds CI pins for the release chaos-smoke run.
const SMOKE_SEEDS: [u64; 3] = [7, 1992, 0xCF5A];

/// A deterministic little request mix: measures across three specs and
/// stride families, plus a sweep — enough shape diversity to exercise
/// routing, sessions and the cache under fire.
fn request_mix(n: u64) -> Vec<Request> {
    let specs = [
        "xor-matched:t=3,s=3",
        "xor-matched:t=3,s=4",
        "interleaved:m=3",
    ];
    (0..n)
        .map(|i| {
            if i % 16 == 15 {
                Request::FamilySweep {
                    spec: specs[(i % 3) as usize].into(),
                    len: 64,
                    max_x: 4,
                    sigma: 3,
                }
            } else {
                let sigma = 2 * (i % 5) as i64 + 1;
                let x = (i % 6) as u32;
                let stride = Stride::from_parts(sigma, x).expect("odd sigma");
                let vec = VectorSpec::with_stride((100 + 8 * i).into(), stride, 64)
                    .expect("bounded base");
                Request::Measure {
                    spec: specs[(i % 3) as usize].into(),
                    vec,
                    strategy: Strategy::Auto,
                }
            }
        })
        .collect()
}

/// The fault-free ground truth for [`request_mix`], from fresh serial
/// sessions.
fn serial_truth(requests: &[Request]) -> Vec<Response> {
    requests
        .iter()
        .map(|request| match request {
            Request::Measure {
                spec,
                vec,
                strategy,
            } => {
                let mut session =
                    BatchRunner::from_spec(&spec.parse().expect("valid spec")).expect("builds");
                Response::Measured(session.measure_owned(vec, *strategy))
            }
            Request::FamilySweep { .. } => {
                // The sweep's truth comes from the service itself with
                // no faults installed — same code path, no chaos.
                let calm = Service::new(ServiceConfig::with_workers(1).cache_capacity(0));
                let response = calm
                    .submit(request.clone())
                    .expect("calm queue has room")
                    .wait()
                    .expect("sweep serves");
                calm.shutdown();
                response
            }
            _ => unreachable!("request_mix only builds measures and sweeps"),
        })
        .collect()
}

/// Drives `requests` through a chaos-rigged service and returns the
/// resolved results plus the closing stats. Every accepted ticket is
/// waited on with a generous timeout so a hang fails the test instead
/// of wedging it.
fn drive(
    config: ServiceConfig,
    requests: &[Request],
) -> (Vec<Result<Response, ServeError>>, ServiceStats) {
    let service = Service::new(config);
    let results: Vec<Result<Response, ServeError>> = requests
        .iter()
        .map(|request| {
            let ticket = service
                .submit(request.clone())
                .expect("queue is sized for the whole mix");
            match ticket.wait_timeout(Duration::from_secs(60)) {
                Ok(result) => result,
                Err(_pending) => panic!("accepted ticket failed to resolve within 60 s"),
            }
        })
        .collect();
    let stats = service.stats();
    service.shutdown();
    (results, stats)
}

/// A chaos config: every recovery mechanism armed, queue sized so the
/// mix itself is never rejected (bursts may be), retries ample for
/// one-shot injected panics.
fn chaos_config(seed: u64, horizon: u64) -> ServiceConfig {
    ServiceConfig::with_workers(3)
        .queue_capacity(512)
        .max_retries(2)
        .fault_plan(Arc::new(FaultPlan::seeded(seed, horizon)))
}

#[test]
fn fixed_seed_chaos_runs_are_bit_identical_to_fault_free_serial() {
    let requests = request_mix(96);
    let truth = serial_truth(&requests);
    for seed in SMOKE_SEEDS {
        let (results, stats) = drive(chaos_config(seed, 4096), &requests);
        for (i, (result, expected)) in results.iter().zip(&truth).enumerate() {
            let got = result
                .as_ref()
                .unwrap_or_else(|e| panic!("seed {seed}: request {i} failed: {e}"));
            assert_eq!(
                got, expected,
                "seed {seed}: request {i} diverged from the fault-free run"
            );
        }
        assert!(
            stats.faults_injected > 0,
            "seed {seed}: the schedule must actually fire over 96 submissions"
        );
    }
}

#[test]
fn chaos_recovery_counters_account_for_the_injections() {
    // Deterministic plan: one job panic (retried), one worker kill
    // (restarted), one cache poison, one burst. The counters must tell
    // that exact story.
    let plan = Arc::new(
        FaultPlan::new()
            .panic_at(3)
            .kill_worker_at(5)
            .poison_cache_at(7)
            .burst_at(9, 4),
    );
    let config = ServiceConfig::with_workers(2)
        .queue_capacity(256)
        .max_retries(2)
        .fault_plan(Arc::clone(&plan));
    let requests = request_mix(32);
    let truth = serial_truth(&requests);
    let (results, stats) = drive(config, &requests);
    for (i, (result, expected)) in results.iter().zip(&truth).enumerate() {
        assert_eq!(
            result.as_ref().expect("all faults here are recoverable"),
            expected,
            "request {i} diverged"
        );
    }
    assert_eq!(plan.injected(), 4, "all four scheduled faults fire");
    assert!(stats.retries >= 1, "the injected panic is retried");
    assert_eq!(stats.restarts, 1, "the killed worker is restarted");
    assert_eq!(stats.deadline_exceeded, 0);
    assert_eq!(stats.degraded, 0, "nothing degrades with fallback off");
    let cache = stats.cache.expect("cache enabled");
    assert!(
        cache.invalidations >= 1,
        "the poison flushed the entries populated by submissions 0–6"
    );
}

#[test]
fn cache_on_equals_cache_off_under_chaos() {
    let requests = request_mix(64);
    let seed = SMOKE_SEEDS[0];
    let cached = drive(chaos_config(seed, 4096), &requests).0;
    let uncached = drive(chaos_config(seed, 4096).cache_capacity(0), &requests).0;
    for (i, (a, b)) in cached.iter().zip(&uncached).enumerate() {
        assert_eq!(
            a.as_ref().expect("recoverable"),
            b.as_ref().expect("recoverable"),
            "request {i}: cache-on and cache-off diverged under chaos"
        );
    }
}

#[test]
fn poisoned_ticket_slot_never_leaks_to_unrelated_requests() {
    // A job panic re-raised through `Ticket::wait` poisons that
    // ticket's own slot mutex mid-unwind. Unrelated requests — before,
    // concurrent, and after — must be untouched: the poison is scoped
    // to the one slot, and the worker (which caught the panic at the
    // job boundary) keeps serving.
    let pool = Pool::new(2, 32, |_| ());
    let before = pool.submit(|(): &mut ()| 1u32);
    let poisoned = pool.submit(|(): &mut ()| -> u32 { panic!("boom") });
    let during: Vec<_> = (0..8u32)
        .map(|i| pool.submit(move |(): &mut ()| i))
        .collect();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || poisoned.wait()));
    assert!(outcome.is_err(), "the panic re-raises at wait()");
    assert_eq!(before.wait(), 1);
    for (i, t) in during.into_iter().enumerate() {
        assert_eq!(t.wait(), i as u32);
    }
    assert_eq!(pool.submit(|(): &mut ()| 9u32).wait(), 9);
    pool.shutdown();
}

#[test]
fn deadline_budget_resolves_typed_error_instead_of_blocking() {
    let service = Service::new(ServiceConfig::with_workers(1).queue_capacity(16));
    // Wedge the only worker behind a slow request so the budgeted one
    // cannot start before its (zero) budget elapses.
    let slow: Vec<_> = (0..4)
        .map(|_| {
            service
                .submit_uncached(Request::FamilySweep {
                    spec: "xor-matched:t=3,s=4".into(),
                    len: 4096,
                    max_x: 10,
                    sigma: 9,
                })
                .expect("queue has room")
        })
        .collect();
    let stride = Stride::from_parts(3, 2).expect("odd sigma");
    let vec = VectorSpec::with_stride(64u64.into(), stride, 64).expect("bounded");
    let budgeted = service
        .submit_with_budget(
            Request::Measure {
                spec: "xor-matched:t=3,s=4".into(),
                vec,
                strategy: Strategy::Auto,
            },
            Duration::ZERO,
        )
        .expect("queue has room");
    match budgeted.wait() {
        Err(ServeError::DeadlineExceeded { budget }) => assert_eq!(budget, Duration::ZERO),
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert!(service.stats().deadline_exceeded >= 1);
    for t in slow {
        t.wait().expect("slow requests finish normally");
    }
    service.shutdown();
}

#[test]
fn degraded_fallback_sheds_overload_with_flagged_estimates() {
    // One worker, tiny queue, fallback on: once the queue is full,
    // further measures resolve *immediately* as Degraded instead of
    // Overloaded.
    let service = Service::new(
        ServiceConfig::with_workers(1)
            .queue_capacity(2)
            .cache_capacity(0)
            .degraded_fallback(true),
    );
    // Wedge the only worker and fill the 2-deep queue with slow sweeps.
    let slow: Vec<_> = (0..3)
        .map(|i| {
            service
                .submit(Request::FamilySweep {
                    spec: "xor-matched:t=3,s=4".into(),
                    len: 65536,
                    max_x: 10,
                    sigma: 2 * i + 1,
                })
                .expect("the first three submissions fill worker + queue")
        })
        .collect();
    let stride = Stride::from_parts(7, 1).expect("odd sigma");
    let mut shed = 0u64;
    for i in 0..8u64 {
        let vec = VectorSpec::with_stride((128 + i).into(), stride, 64).expect("bounded");
        let ticket = service
            .submit(Request::Measure {
                spec: "xor-matched:t=3,s=4".into(),
                vec,
                strategy: Strategy::Auto,
            })
            .expect("the fallback absorbs overload instead of rejecting");
        let result = ticket
            .wait_timeout(Duration::from_secs(60))
            .unwrap_or_else(|_| panic!("measure {i} failed to resolve"))
            .expect("measures serve");
        match result {
            Response::Degraded { response, .. } => {
                assert!(
                    matches!(*response, Response::Measured(Some(_))),
                    "degraded measures keep the Measured shape"
                );
                shed += 1;
            }
            Response::Measured(Some(_)) => {} // queue had room again
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert!(
        shed >= 1,
        "a wedged worker behind a full 2-deep queue must shed at least once"
    );
    assert_eq!(service.stats().degraded, shed);
    for t in slow {
        t.wait().expect("sweeps finish normally");
    }
    service.shutdown();
}

#[test]
fn degraded_exact_estimates_match_the_full_simulation() {
    // For an access whose analytic estimate is provably exact, the
    // degraded response's aggregates must equal the full simulation's.
    let mut session =
        BatchRunner::from_spec(&"xor-matched:t=3,s=4".parse().expect("valid")).expect("builds");
    let stride = Stride::from_parts(1, 0).expect("odd");
    let vec = VectorSpec::with_stride(0u64.into(), stride, 512).expect("bounded");
    let est = session
        .analytic(&vec, Strategy::Auto)
        .expect("auto always plans");
    if !est.exact {
        // The estimator refuses to claim exactness here; nothing to
        // cross-check.
        return;
    }
    let full = session
        .measure_owned(&vec, Strategy::Auto)
        .expect("auto always plans");
    assert_eq!(est.latency, full.latency);
    assert_eq!(est.stall_cycles, full.stall_cycles);
    assert_eq!(est.conflicts, full.conflicts);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The headline liveness-and-correctness property: for *any* seed,
    /// every accepted ticket resolves, responses match the fault-free
    /// truth, and shutdown drains.
    #[test]
    fn any_seeded_schedule_preserves_liveness_and_bit_identity(seed in 0u64..u64::MAX) {
        // The fault-free truth is seed-independent; compute it once.
        static TRUTH: std::sync::OnceLock<(Vec<Request>, Vec<Response>)> =
            std::sync::OnceLock::new();
        let (requests, truth) = TRUTH.get_or_init(|| {
            let requests = request_mix(48);
            let truth = serial_truth(&requests);
            (requests, truth)
        });
        let (results, _stats) = drive(chaos_config(seed, 4096), requests);
        for (i, (result, expected)) in results.iter().zip(truth.iter()).enumerate() {
            let got = result
                .as_ref()
                .unwrap_or_else(|e| panic!("seed {seed}: request {i} failed: {e}"));
            prop_assert_eq!(got, expected, "seed {}: request {} diverged", seed, i);
        }
    }
}
