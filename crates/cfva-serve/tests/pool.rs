//! Pool semantics the serving layer depends on: bounded admission
//! rejects under a stalled worker, shutdown drains every accepted
//! job, and an idle worker steals a stalled peer's backlog.

use std::sync::mpsc;
use std::time::Duration;

use cfva_serve::pool::{Pool, SubmitError, Ticket};

/// A job that blocks its worker until the test releases the gate.
fn stall_job(rx: mpsc::Receiver<()>) -> impl FnOnce(&mut usize) -> usize + Send {
    move |worker: &mut usize| {
        rx.recv().expect("gate sender dropped");
        *worker
    }
}

#[test]
fn bounded_queue_rejects_with_typed_overload_under_a_stalled_worker() {
    let pool = Pool::new(1, 2, |worker| worker);
    let (gate, gate_rx) = mpsc::channel();
    let stalled = pool.submit(stall_job(gate_rx));
    // Give the worker a beat to pick the stall job up, so the two
    // fillers below are genuinely *queued*, not racing for the pop.
    while pool.queue_depth() > 0 {
        std::thread::yield_now();
    }

    let filler_a = pool.try_submit(|_: &mut usize| 1u32).expect("depth 0 of 2");
    let filler_b = pool.try_submit(|_: &mut usize| 2u32).expect("depth 1 of 2");
    let err = pool
        .try_submit(|_: &mut usize| 3u32)
        .expect_err("queue is at capacity");
    assert_eq!(
        err,
        SubmitError::QueueFull {
            queue_depth: 2,
            capacity: 2
        }
    );
    // Typed, recoverable backpressure: release the worker and the pool
    // serves again — including the very submission it just refused.
    gate.send(()).unwrap();
    assert_eq!(stalled.wait(), 0);
    assert_eq!(filler_a.wait(), 1);
    assert_eq!(filler_b.wait(), 2);
    assert_eq!(
        pool.try_submit(|_: &mut usize| 3u32)
            .expect("room again")
            .wait(),
        3
    );
    pool.shutdown();
}

#[test]
fn shutdown_drains_every_accepted_job() {
    let pool = Pool::new(2, 1024, |worker| worker);
    let tickets: Vec<Ticket<u64>> = (0..200u64)
        .map(|i| pool.submit(move |_: &mut usize| i * 3))
        .collect();
    // Shutdown must block until queued AND in-flight jobs finish; by
    // the time it returns, every ticket has resolved.
    pool.shutdown();
    for (i, mut ticket) in tickets.into_iter().enumerate() {
        let value = ticket
            .poll()
            .expect("shutdown returned, so the job must have completed");
        assert_eq!(value, i as u64 * 3);
    }
}

#[test]
fn submission_after_shutdown_begins_is_refused_and_accepted_work_drains() {
    let pool = Pool::new(1, 64, |worker| worker);
    let (gate, gate_rx) = mpsc::channel();
    let stalled = pool.submit(stall_job(gate_rx));

    std::thread::scope(|scope| {
        let pool = &pool;
        // Shutdown from another thread: it flips the admission flag
        // immediately, then blocks joining the stalled worker.
        let shutdown = scope.spawn(move || pool.shutdown());

        // Keep submitting until the typed refusal arrives. Requests
        // accepted in the meantime (and QueueFull bounces off the
        // still-stalled worker) are both legitimate interleavings.
        let mut accepted = Vec::new();
        loop {
            match pool.try_submit(|worker: &mut usize| *worker) {
                Ok(ticket) => accepted.push(ticket),
                Err(SubmitError::ShuttingDown) => break,
                Err(SubmitError::QueueFull { .. }) => {}
            }
            std::thread::yield_now();
        }

        gate.send(()).unwrap();
        shutdown.join().expect("shutdown thread panicked");
        // Shutdown drains: everything accepted before the flag flipped
        // has resolved.
        for mut ticket in accepted {
            assert_eq!(ticket.poll(), Some(0));
        }
    });
    assert_eq!(stalled.wait(), 0);
}

#[test]
fn idle_worker_steals_a_stalled_peers_backlog() {
    // Sessions are the worker index, so each job reports who ran it.
    let pool = Pool::new(2, 64, |worker| worker);
    let (gate, gate_rx) = mpsc::channel();
    let (holder_tx, holder_rx) = mpsc::channel();

    // Stall one worker. The stall job is targeted at worker 0's local
    // queue, but the idle peer may legitimately steal it first — so
    // the job reports which worker actually holds it before blocking.
    let stalled = pool.submit_to(0, move |worker: &mut usize| {
        holder_tx.send(*worker).expect("test alive");
        gate_rx.recv().expect("gate sender dropped");
        *worker
    });
    let holder = holder_rx.recv().expect("stall job started");
    let peer = 1 - holder;

    // Pile the *holder's* local queue high while the peer sits idle.
    // Until the gate opens the holder cannot run anything, so the only
    // way these jobs complete is the peer stealing them.
    let backlog: Vec<Ticket<usize>> = (0..8)
        .map(|_| pool.submit_to(holder, |worker: &mut usize| *worker))
        .collect();

    let mut ran_on: Vec<usize> = Vec::new();
    for ticket in backlog {
        match ticket.wait_timeout(Duration::from_secs(30)) {
            Ok(worker) => ran_on.push(worker),
            Err(_) => panic!("backlog job never ran: stealing is broken"),
        }
    }
    assert!(
        ran_on.iter().all(|&w| w == peer),
        "worker {holder} was stalled; every backlog job must have been \
         stolen by worker {peer}, got {ran_on:?}"
    );

    gate.send(()).unwrap();
    assert_eq!(stalled.wait(), holder);
    pool.shutdown();
}

#[test]
fn affinity_submission_prefers_the_target_worker_when_free() {
    let pool = Pool::new(2, 64, |worker| worker);
    let (gate, gate_rx) = mpsc::channel();
    let (holder_tx, holder_rx) = mpsc::channel();
    // Stall one worker (wherever the stall job lands); jobs targeted
    // at the free peer's local queue run on that peer.
    let stalled = pool.submit_to(1, move |worker: &mut usize| {
        holder_tx.send(*worker).expect("test alive");
        gate_rx.recv().expect("gate sender dropped");
        *worker
    });
    let holder = holder_rx.recv().expect("stall job started");
    let peer = 1 - holder;
    for _ in 0..4 {
        let worker = pool.submit_to(peer, |worker: &mut usize| *worker).wait();
        assert_eq!(
            worker, peer,
            "worker {peer} is free and owns the local queue"
        );
    }
    gate.send(()).unwrap();
    assert_eq!(stalled.wait(), holder);
    pool.shutdown();
}
