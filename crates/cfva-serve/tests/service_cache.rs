//! The result-cache contract: caching is **invisible** in values
//! (cache-on ≡ cache-off, bit for bit, over random request streams),
//! equivalent requests share one entry (canonical spec spelling,
//! stride-class membership), the bypass knobs really bypass, the bound
//! really bounds — and a hit is *much* cheaper than a pooled miss.

use std::time::{Duration, Instant};

use cfva_core::mapping::{MapSpec, ModuleMap, Registry};
use cfva_core::plan::Strategy;
use cfva_core::{Stride, VectorSpec};
use cfva_serve::api::{Estimator, Request};
use cfva_serve::service::{Service, ServiceConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Every registered coverage spec, as owned strings.
fn all_specs() -> Vec<String> {
    Registry::builtin()
        .all_specs()
        .iter()
        .map(|s| s.to_string())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The acceptance bit-identity: a cache-on service and a cache-off
    /// service answer a random request stream — with guaranteed
    /// repeats, so the cached side actually serves hits — with equal
    /// results at every position.
    #[test]
    fn cache_on_and_cache_off_streams_are_bit_identical(seed in 0u64..1 << 32) {
        let mut rng = StdRng::seed_from_u64(seed);
        let specs = all_specs();

        let mut requests = Vec::new();
        for _ in 0..8 {
            let spec = specs[rng.gen_range(0..specs.len())].clone();
            let sigma = 2 * rng.gen_range(0i64..8) + 1;
            let x = rng.gen_range(0u32..7);
            let stride = Stride::from_parts(sigma, x).expect("odd sigma");
            let vec = VectorSpec::with_stride(
                rng.gen_range(0u64..1 << 20).into(),
                stride,
                64 << rng.gen_range(0..3),
            )
            .expect("bounded base");
            let request = match rng.gen_range(0..4) {
                0 | 1 => Request::Measure {
                    spec,
                    vec,
                    strategy: [Strategy::Auto, Strategy::Canonical][rng.gen_range(0..2)],
                },
                2 => Request::FamilySweep {
                    spec,
                    len: 64,
                    max_x: rng.gen_range(0..6),
                    sigma,
                },
                _ => Request::Efficiency {
                    spec,
                    strategy: Strategy::Auto,
                    len: 64,
                    estimator: Estimator::Stratified {
                        max_x: 4,
                        per_family: 2,
                    },
                    seed: rng.gen_range(0..4),
                },
            };
            requests.push(request.clone());
            if rng.gen_bool(0.5) {
                requests.push(request);
            }
        }
        // At least one guaranteed repeat, so `hits > 0` below is not
        // at the mercy of the coin flips.
        requests.push(requests[0].clone());

        let cached = Service::new(ServiceConfig::with_workers(2));
        let uncached = Service::new(ServiceConfig::with_workers(2).cache_capacity(0));
        for request in &requests {
            let warm = cached
                .submit(request.clone())
                .expect("queue has room")
                .wait();
            let cold = uncached
                .submit(request.clone())
                .expect("queue has room")
                .wait();
            prop_assert_eq!(&warm, &cold, "{:?}", request);
        }

        let stats = cached.stats().cache.expect("cache is on by default");
        prop_assert!(stats.hits > 0, "repeats in the stream must hit: {stats:?}");
        prop_assert!(uncached.stats().cache.is_none(), "capacity 0 disables");
        cached.shutdown();
        uncached.shutdown();
    }
}

#[test]
fn repeated_request_is_served_from_the_cache() {
    let service = Service::new(ServiceConfig::with_workers(2));
    let request = Request::Measure {
        spec: "xor-matched:t=3,s=4".into(),
        vec: VectorSpec::new(16, 12, 256).expect("valid"),
        strategy: Strategy::Auto,
    };

    let first = service
        .submit(request.clone())
        .expect("room")
        .wait()
        .expect("serves");
    let second = service
        .submit(request)
        .expect("room")
        .wait()
        .expect("serves");
    assert_eq!(first, second);

    let stats = service.stats();
    let cache = stats.cache.expect("cache on by default");
    assert_eq!((cache.hits, cache.misses, cache.entries), (1, 1, 1));
    assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
    // Both tickets were waited on: nothing queued, nothing in flight.
    assert_eq!((stats.queue_depth, stats.in_flight), (0, 0));
    service.shutdown();
}

#[test]
fn equivalent_spellings_and_class_members_share_one_entry() {
    // The map's used address bits determine the stride-equivalence
    // reductions: base mod 2^used, sigma mod 2^(used - x).
    let spec: MapSpec = "xor-matched:t=3,s=4".parse().expect("parses");
    let used = Registry::builtin()
        .build(&spec)
        .expect("builds")
        .address_bits_used();

    let service = Service::new(ServiceConfig::with_workers(1));
    let base = 16u64;
    let (sigma, x) = (3i64, 2u32);
    let stride = sigma << x;
    let submit = |spec: &str, base: u64, stride: i64| {
        service
            .submit(Request::Measure {
                spec: spec.into(),
                vec: VectorSpec::new(base, stride, 128).expect("valid"),
                strategy: Strategy::Auto,
            })
            .expect("room")
            .wait()
            .expect("serves")
    };

    let original = submit("xor-matched:t=3,s=4", base, stride);
    // Same map, scrambled key order and hex/binary literals.
    let respelled = submit("xor-matched:s=0x4,t=0b11", base, stride);
    // Same stride class: base shifted by 2^used…
    let shifted_base = submit("xor-matched:t=3,s=4", base + (1 << used), stride);
    // …and the odd part shifted by 2^(used - x).
    let shifted_sigma = submit(
        "xor-matched:t=3,s=4",
        base,
        (sigma + (1 << (used - x))) << x,
    );

    assert_eq!(original, respelled);
    assert_eq!(original, shifted_base);
    assert_eq!(original, shifted_sigma);
    let cache = service.stats().cache.expect("cache on");
    assert_eq!(
        (cache.hits, cache.misses, cache.entries),
        (3, 1, 1),
        "all four spellings reduce to one key: {cache:?}"
    );
    service.shutdown();
}

#[test]
fn submit_uncached_bypasses_and_never_populates() {
    let service = Service::new(ServiceConfig::with_workers(1));
    let request = Request::Measure {
        spec: "skewed:m=3,d=1".into(),
        vec: VectorSpec::new(0, 8, 128).expect("valid"),
        strategy: Strategy::Auto,
    };

    let a = service
        .submit_uncached(request.clone())
        .expect("room")
        .wait()
        .expect("serves");
    let b = service
        .submit_uncached(request.clone())
        .expect("room")
        .wait()
        .expect("serves");
    assert_eq!(a, b, "bypassing the cache does not change values");

    let cache = service.stats().cache.expect("cache on");
    assert_eq!(
        (cache.hits, cache.misses, cache.entries, cache.bypasses),
        (0, 0, 0, 2),
        "uncached submissions neither consult nor populate: {cache:?}"
    );

    // A cached submission after the bypasses starts cold (miss), and a
    // bypass after the populate still goes to the pool.
    service
        .submit(request.clone())
        .expect("room")
        .wait()
        .expect("serves");
    service
        .submit_uncached(request)
        .expect("room")
        .wait()
        .expect("serves");
    let cache = service.stats().cache.expect("cache on");
    assert_eq!(
        (cache.hits, cache.misses, cache.entries, cache.bypasses),
        (0, 1, 1, 3),
        "{cache:?}"
    );
    service.shutdown();
}

#[test]
fn tiny_capacity_stays_bounded_and_evicts() {
    let service = Service::new(ServiceConfig::with_workers(2).cache_capacity(8));
    // 64 distinct stride classes (odd parts 1, 3, …, 127 are distinct
    // mod 2^used for every builtin map), all cached successfully.
    for i in 0..64i64 {
        service
            .submit(Request::Measure {
                spec: "xor-matched:t=3,s=4".into(),
                vec: VectorSpec::new(0, 2 * i + 1, 64).expect("valid"),
                strategy: Strategy::Auto,
            })
            .expect("room")
            .wait()
            .expect("serves");
    }
    let cache = service.stats().cache.expect("cache on");
    assert!(
        cache.entries <= cache.capacity && cache.capacity == 8,
        "bounded: {cache:?}"
    );
    assert_eq!(
        cache.evictions + cache.entries as u64,
        64,
        "every distinct miss was inserted, overflow evicted: {cache:?}"
    );
    service.shutdown();
}

#[test]
fn cache_hit_path_is_50x_faster_than_pooled_misses() {
    // The acceptance ratio. A FamilySweep is many measurements with a
    // tiny response, so the gap between "clone a cached row set" and
    // "run the sweep through the pool" dwarfs scheduler noise.
    let service = Service::new(ServiceConfig::with_workers(1));
    let request = Request::FamilySweep {
        spec: "xor-matched:t=3,s=4".into(),
        len: 8192,
        max_x: 12,
        sigma: 3,
    };

    // Warm the single entry.
    let warm = service
        .submit(request.clone())
        .expect("room")
        .wait()
        .expect("serves");

    const ITERS: u32 = 32;
    let hits = Instant::now();
    for _ in 0..ITERS {
        let got = service
            .submit(request.clone())
            .expect("room")
            .wait()
            .expect("serves");
        assert_eq!(got, warm);
    }
    let hit_total = hits.elapsed();

    let misses = Instant::now();
    for _ in 0..ITERS {
        let got = service
            .submit_uncached(request.clone())
            .expect("room")
            .wait()
            .expect("serves");
        assert_eq!(got, warm);
    }
    let miss_total = misses.elapsed();

    let cache = service.stats().cache.expect("cache on");
    assert_eq!(cache.hits, ITERS as u64, "every warm submit hit: {cache:?}");
    assert!(
        miss_total >= hit_total.max(Duration::from_nanos(1)) * 50,
        "cache hits must be >= 50x faster: {ITERS} hits took {hit_total:?}, \
         {ITERS} pooled misses took {miss_total:?}"
    );
    service.shutdown();
}
