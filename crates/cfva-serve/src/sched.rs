//! The conflict-aware admission batcher: predicted-conflict batching
//! in front of the session pool.
//!
//! # What it does
//!
//! With a [`SchedulerConfig`] installed
//! ([`ServiceConfig::scheduler`](crate::service::ServiceConfig)),
//! predictable measurement requests are not submitted one by one.
//! They are **packaged** (closure + ticket, exactly what the direct
//! path submits) and parked in a bounded window together with their
//! [occupancy signatures](cfva_core::equiv::OccupancySignature). When
//! the window fills — or a caller blocks on a ticket, or the service
//! flushes — the batcher colors the window's **predicted-conflict
//! graph** greedily: two requests may share a batch only when they
//! target the same map and their pairwise
//! [`conflict_score`](cfva_core::equiv::conflict_score) (×1000,
//! rounded) stays within [`SchedulerConfig::max_score_milli`]. Each
//! batch is routed to its spec's affinity worker as **one composite
//! job** ([`Pool`]`::submit_sequence`), so a set of streams the
//! predictor calls compatible runs back to back on one warm session
//! with nothing interleaved.
//!
//! # What it does not do
//!
//! Change responses. Every member of a batch still computes its own
//! response against its own request; the batcher only reorders and
//! groups executions. Scheduler on ≡ scheduler off ≡ serial, bit for
//! bit, is pinned by proptest in `tests/service_equivalence.rs`.
//!
//! # Degrading to FIFO
//!
//! The batcher degrades to plain FIFO submission — counted under
//! `scheduler_fifo_fallbacks` — whenever prediction has nothing to
//! offer: the window is cold (a flush finds a single parked request),
//! a request's spec does not build (no map, no signature), or the
//! request shape is not a measurement. Unpredictable requests never
//! wait: they take the direct submit path immediately.
//!
//! # Locking
//!
//! The window is one [`LockClass::SchedWindow`] mutex and obeys the
//! crate's leaf discipline: a flush *takes* the parked entries under
//! the lock, releases it, and only then scores, colors and submits
//! (submission acquires the pool's `Sched` lock — holding the window
//! across it would nest).

use std::sync::atomic::Ordering;
use std::sync::{Arc, Weak};

use cfva_core::equiv::OccupancySignature;

use crate::api::SchedulePlan;
use crate::locks::{ClassedMutex, LockClass};
use crate::pool::{BoxedRun, Pool};
use crate::service::{ServeCounters, SpecSessions};

/// Admission-batcher sizing knobs
/// ([`ServiceConfig::scheduler`](crate::service::ServiceConfig)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Requests parked before a flush triggers on its own. A caller
    /// blocking on any scheduled ticket also flushes, so a partially
    /// filled window never strands work.
    pub window: usize,
    /// Largest batch routed to a worker as one composite job.
    pub batch_width: usize,
    /// Largest pairwise conflict score (×1000) tolerated inside one
    /// batch. The default `0` co-schedules only streams the predictor
    /// calls module-disjoint.
    pub max_score_milli: u32,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            window: 8,
            batch_width: 4,
            max_score_milli: 0,
        }
    }
}

/// One parked request: the packaged run the direct path would have
/// submitted, plus everything the batcher needs to score it.
pub(crate) struct WindowEntry {
    /// The packaged job; its ticket is already in the caller's hands.
    pub(crate) run: BoxedRun<'static, SpecSessions>,
    /// The spec's affinity worker (the same `route` as the direct
    /// path).
    pub(crate) worker: usize,
    /// The canonical spec string; batches never span maps.
    pub(crate) canon: String,
    /// The stream's predicted module-occupancy signature.
    pub(crate) signature: OccupancySignature,
    /// The map's module count — the `conflict_score` scale factor.
    pub(crate) module_count: f64,
}

impl std::fmt::Debug for WindowEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WindowEntry")
            .field("worker", &self.worker)
            .field("canon", &self.canon)
            .finish_non_exhaustive()
    }
}

/// The batcher state shared between the service and its scheduled
/// tickets (tickets flush before blocking, so a parked request can
/// never deadlock its own caller).
#[derive(Debug)]
pub(crate) struct SchedulerShared {
    window: ClassedMutex<Vec<WindowEntry>>,
    /// Weak: the service owns the pool; the batcher must not keep it
    /// alive past shutdown.
    pool: Weak<Pool<SpecSessions>>,
    config: SchedulerConfig,
    counters: Arc<ServeCounters>,
}

/// A batch under construction during a flush.
struct Batch {
    worker: usize,
    canon: String,
    runs: Vec<BoxedRun<'static, SpecSessions>>,
    signatures: Vec<OccupancySignature>,
    module_count: f64,
    predicted_milli: u64,
}

impl SchedulerShared {
    pub(crate) fn new(
        pool: Weak<Pool<SpecSessions>>,
        config: SchedulerConfig,
        counters: Arc<ServeCounters>,
    ) -> Arc<Self> {
        Arc::new(SchedulerShared {
            window: ClassedMutex::new(LockClass::SchedWindow, Vec::new()),
            pool,
            config,
            counters,
        })
    }

    /// Requests currently parked (the `scheduler_window_occupancy`
    /// gauge).
    pub(crate) fn occupancy(&self) -> usize {
        self.window.lock().len()
    }

    /// Parks a packaged request; flushes when the window is full.
    pub(crate) fn enqueue(&self, entry: WindowEntry) {
        let full = {
            let mut window = self.window.lock();
            window.push(entry);
            window.len() >= self.config.window.max(1)
        };
        if full {
            self.flush();
        }
    }

    /// Counts a request that bypassed the window (unpredictable spec
    /// or shape).
    pub(crate) fn note_fifo_fallback(&self) {
        self.counters
            .scheduler_fifo_fallbacks
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Drains the window: scores, colors, submits. Safe to call at any
    /// time from any thread; an empty window is a no-op.
    pub(crate) fn flush(&self) {
        let entries = std::mem::take(&mut *self.window.lock());
        if entries.is_empty() {
            return;
        }
        let Some(pool) = self.pool.upgrade() else {
            // The service is gone mid-flush; dropping the runs resolves
            // every member ticket as panicked — abandoned, not hung.
            return;
        };
        if entries.len() == 1 {
            // Cold window: nothing to batch against — degrade to FIFO.
            self.counters
                .scheduler_fifo_fallbacks
                .fetch_add(1, Ordering::Relaxed);
            for entry in entries {
                let _ = pool.submit_sequence(entry.worker, vec![entry.run]);
            }
            return;
        }
        // Greedy coloring in arrival order: each request joins the
        // first open batch of its map whose members it is predicted
        // compatible with, else opens a new one. O(window²) pairwise
        // scores — the window is small by construction.
        let mut batches: Vec<Batch> = Vec::new();
        let threshold = u64::from(self.config.max_score_milli);
        let width = self.config.batch_width.max(1);
        for entry in entries {
            let mut pending = Some(entry);
            for batch in &mut batches {
                let Some(candidate) = pending.as_ref() else {
                    break;
                };
                if batch.canon != candidate.canon || batch.runs.len() >= width {
                    continue;
                }
                let scores: Vec<u64> = batch
                    .signatures
                    .iter()
                    .map(|sig| score_milli(batch.module_count, sig, &candidate.signature))
                    .collect();
                if scores.iter().all(|&s| s <= threshold) {
                    let Some(taken) = pending.take() else {
                        break;
                    };
                    batch.predicted_milli += scores.iter().sum::<u64>();
                    batch.runs.push(taken.run);
                    batch.signatures.push(taken.signature);
                }
            }
            if let Some(opener) = pending {
                batches.push(Batch {
                    worker: opener.worker,
                    canon: opener.canon,
                    runs: vec![opener.run],
                    signatures: vec![opener.signature],
                    module_count: opener.module_count,
                    predicted_milli: 0,
                });
            }
        }
        for batch in batches {
            if batch.runs.len() >= 2 {
                self.counters
                    .scheduler_batches
                    .fetch_add(1, Ordering::Relaxed);
                self.counters
                    .scheduler_batched
                    .fetch_add(batch.runs.len() as u64, Ordering::Relaxed);
                self.counters
                    .predicted_conflicts_milli
                    .fetch_add(batch.predicted_milli, Ordering::Relaxed);
            } else {
                self.counters
                    .scheduler_fifo_fallbacks
                    .fetch_add(1, Ordering::Relaxed);
            }
            // A refusal here is the shutdown race: the dropped runs
            // resolve their tickets as panicked through the Completer.
            let _ = pool.submit_sequence(batch.worker, batch.runs);
        }
    }
}

/// One pairwise predicted-conflict score, in milli-units: the
/// [`conflict_score`](cfva_core::equiv::conflict_score) of the two
/// streams (module count × signature overlap), ×1000, rounded.
pub(crate) fn score_milli(
    module_count: f64,
    a: &OccupancySignature,
    b: &OccupancySignature,
) -> u64 {
    (module_count * a.overlap(b) * 1000.0).round() as u64
}

/// Partitions `n` streams into co-run waves under `schedule` — the
/// pure planning core shared by [`Request::MultiStream`] execution and
/// exercised directly by the scheduler's unit tests.
///
/// * [`Together`](SchedulePlan::Together): one wave of everything.
/// * [`FifoWaves`](SchedulePlan::FifoWaves): arrival-order chunks of
///   `width` — the baseline that ignores conflicts.
/// * [`ConflictAware`](SchedulePlan::ConflictAware): greedy coloring —
///   each stream joins the first wave with room whose members all
///   score within `max_score_milli` against it, else opens a new wave.
///
/// `score_milli(i, j)` is only consulted for `i > j` with both indices
/// in range. Wave order and within-wave order both follow arrival
/// order, so the partition is deterministic.
///
/// [`Request::MultiStream`]: crate::api::Request::MultiStream
pub(crate) fn plan_waves(
    n: usize,
    schedule: SchedulePlan,
    mut score_milli: impl FnMut(usize, usize) -> u64,
) -> Vec<Vec<usize>> {
    match schedule {
        SchedulePlan::Together => {
            if n == 0 {
                Vec::new()
            } else {
                vec![(0..n).collect()]
            }
        }
        SchedulePlan::FifoWaves { width } => {
            let width = width.max(1) as usize;
            (0..n)
                .collect::<Vec<usize>>()
                .chunks(width)
                .map(<[usize]>::to_vec)
                .collect()
        }
        SchedulePlan::ConflictAware {
            width,
            max_score_milli,
        } => {
            let width = width.max(1) as usize;
            let threshold = u64::from(max_score_milli);
            let mut waves: Vec<Vec<usize>> = Vec::new();
            for i in 0..n {
                let slot = waves.iter_mut().find(|wave| {
                    wave.len() < width && wave.iter().all(|&j| score_milli(i, j) <= threshold)
                });
                match slot {
                    Some(wave) => wave.push(i),
                    None => waves.push(vec![i]),
                }
            }
            waves
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(waves: &[Vec<usize>]) -> Vec<usize> {
        let mut all: Vec<usize> = waves.iter().flatten().copied().collect();
        all.sort_unstable();
        all
    }

    #[test]
    fn together_is_one_wave() {
        assert_eq!(
            plan_waves(4, SchedulePlan::Together, |_, _| 0),
            vec![vec![0, 1, 2, 3]]
        );
        assert!(plan_waves(0, SchedulePlan::Together, |_, _| 0).is_empty());
    }

    #[test]
    fn fifo_waves_chunk_in_arrival_order() {
        let waves = plan_waves(5, SchedulePlan::FifoWaves { width: 2 }, |_, _| {
            unreachable!("FIFO never scores")
        });
        assert_eq!(waves, vec![vec![0, 1], vec![2, 3], vec![4]]);
        // A zero width is clamped, not a panic or an infinite loop.
        let clamped = plan_waves(3, SchedulePlan::FifoWaves { width: 0 }, |_, _| 0);
        assert_eq!(clamped.len(), 3);
    }

    #[test]
    fn conflict_aware_separates_conflicting_streams() {
        // Streams 0/1 conflict, 2/3 conflict; cross pairs are free.
        // Greedy coloring pairs {0,2} and {1,3} — FIFO width 2 would
        // have paired the conflicting neighbors.
        let score = |i: usize, j: usize| {
            let (lo, hi) = (i.min(j), i.max(j));
            u64::from((lo, hi) == (0, 1) || (lo, hi) == (2, 3)) * 5000
        };
        let waves = plan_waves(
            4,
            SchedulePlan::ConflictAware {
                width: 2,
                max_score_milli: 0,
            },
            score,
        );
        assert_eq!(waves, vec![vec![0, 2], vec![1, 3]]);
        assert_eq!(flat(&waves), vec![0, 1, 2, 3], "every stream runs once");
    }

    #[test]
    fn conflict_aware_respects_width_and_threshold() {
        // All-compatible streams still split by width…
        let waves = plan_waves(
            5,
            SchedulePlan::ConflictAware {
                width: 2,
                max_score_milli: 0,
            },
            |_, _| 0,
        );
        assert!(waves.iter().all(|w| w.len() <= 2));
        assert_eq!(flat(&waves), vec![0, 1, 2, 3, 4]);
        // …and an all-conflicting window degenerates to singletons.
        let solo = plan_waves(
            3,
            SchedulePlan::ConflictAware {
                width: 4,
                max_score_milli: 999,
            },
            |_, _| 1000,
        );
        assert_eq!(solo, vec![vec![0], vec![1], vec![2]]);
    }
}
