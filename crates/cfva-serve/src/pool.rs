//! A hand-rolled work-stealing session pool — the one scheduling
//! substrate under parallel sweeps, the benches and the serving front
//! end. No external runtime: plain `std::thread` workers coordinated
//! with a `Mutex`/`Condvar` pair.
//!
//! # Shape
//!
//! Crossbeam-style topology with std primitives:
//!
//! * one **local queue per worker** — jobs submitted with
//!   [`Pool::submit_to`] land here, giving callers affinity (the
//!   serving layer routes same-spec requests to the same worker so its
//!   session cache stays hot);
//! * a **global injector** — [`Pool::submit`] round-robins nothing and
//!   reorders nothing: any idle worker may pick an injected job up;
//! * **steal-on-idle** — a worker with an empty local queue first
//!   drains the injector, then steals from the *back* of a peer's
//!   local queue (ring order from its own index), so a stalled
//!   worker's backlog is finished by its peers.
//!
//! All queues sit behind **one** mutex paired with the wake-up condvar.
//! That is deliberate: jobs here are whole simulator runs (micro- to
//! milliseconds), so queue transfer cost is noise, and a single lock
//! keeps the sleep/wake protocol — and the drain-on-shutdown proof —
//! trivially correct. (A lock-free Chase–Lev deque would need `unsafe`,
//! which this workspace forbids.)
//!
//! Each worker owns a long-lived **session** of type `S`, built on the
//! worker's own thread by the pool's `make` closure and handed by
//! `&mut` to every job it executes — engine scratch and plan buffers
//! are reused across jobs instead of rebuilt per request.
//!
//! # Completion and backpressure
//!
//! Submission returns a [`Ticket`] — a future-like handle resolved by
//! the worker that executes the job ([`Ticket::poll`] /
//! [`Ticket::wait`] / [`Ticket::wait_timeout`]). The bounded admission
//! flavors ([`Pool::try_submit`], [`Pool::try_submit_to`]) refuse work
//! beyond the queue capacity with [`SubmitError::QueueFull`] instead
//! of queueing unboundedly; [`Pool::shutdown`] drains every queued job
//! before the workers exit, so accepted tickets always resolve.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar};
use std::time::Duration;

use crate::fault::{self, FaultPlan, WorkerFault};
use crate::locks::{self, ClassedMutex, LockClass};

/// The boxed closure a worker runs against its session. Crate-visible
/// so the admission batcher can hold packaged-but-unsubmitted jobs in
/// its window (see `sched`).
pub(crate) type BoxedRun<'a, S> = Box<dyn FnOnce(&mut S) + Send + 'a>;

/// A queued unit of work: runs on a worker against its session. `tag`
/// is the pool-wide job sequence number keying the fault plan; always
/// 0 when no plan is installed (the counter is skipped entirely).
struct Job<'a, S> {
    run: BoxedRun<'a, S>,
    tag: u64,
}

/// Why a bounded submission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue is at capacity; the job was **not** queued.
    QueueFull {
        /// Jobs waiting (across the injector and all local queues) at
        /// the moment of refusal.
        queue_depth: usize,
        /// The configured admission capacity.
        capacity: usize,
    },
    /// [`Pool::shutdown`] has begun; no new work is admitted.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull {
                queue_depth,
                capacity,
            } => write!(
                f,
                "admission queue full: {queue_depth} job(s) queued, capacity {capacity}"
            ),
            SubmitError::ShuttingDown => write!(f, "pool is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// The scheduler state all workers share: every queue behind one lock.
struct Sched<'a, S> {
    injector: VecDeque<Job<'a, S>>,
    locals: Vec<VecDeque<Job<'a, S>>>,
    /// Total queued (injector + locals); the bounded-admission gauge.
    queued: usize,
    shutting_down: bool,
    /// Workers whose session constructed and whose loop is (or will
    /// be) serving. A `make` closure that panics decrements this; at
    /// zero the pool is dead — admission closes and queued jobs are
    /// dropped (resolving their tickets as panicked) rather than
    /// stranded.
    alive: usize,
    /// The next job sequence number, advanced only when a fault plan
    /// is installed (see [`Job::tag`]).
    next_tag: u64,
}

impl<'a, S> Sched<'a, S> {
    /// Next job for `worker`: local front, then injector front, then a
    /// steal from the back of a peer's queue (ring order).
    fn pop_for(&mut self, worker: usize) -> Option<Job<'a, S>> {
        let job = self.locals[worker]
            .pop_front()
            .or_else(|| self.injector.pop_front())
            .or_else(|| {
                let n = self.locals.len();
                (1..n).find_map(|off| {
                    self.locals
                        .get_mut((worker + off) % n)
                        .and_then(VecDeque::pop_back)
                })
            });
        if job.is_some() {
            self.queued -= 1;
        }
        job
    }
}

/// Shared pool core, generic over the job lifetime so the same worker
/// loop serves both the long-lived [`Pool`] and the scoped pool behind
/// `BatchRunner::sweep`.
struct Core<'a, S> {
    sched: ClassedMutex<Sched<'a, S>>,
    /// Signalled on every submission and on shutdown.
    work: Condvar,
    capacity: usize,
    /// The installed fault plan; `None` (the default) costs nothing —
    /// jobs are not even tagged.
    faults: Option<Arc<FaultPlan>>,
    /// Per-worker restart counts, maintained by the supervisor path.
    /// Indexed by worker; the budget is [`Core::max_restarts`] each.
    supervisor: ClassedMutex<Vec<u32>>,
    /// Restart budget per worker before it is abandoned for good.
    max_restarts: u32,
    /// Total restarts granted across all workers (monitoring).
    restarts_total: AtomicU64,
}

impl<'a, S> Core<'a, S> {
    fn new(workers: usize, capacity: usize) -> Self {
        Core::with_faults(workers, capacity, None, PoolOptions::DEFAULT_MAX_RESTARTS)
    }

    fn with_faults(
        workers: usize,
        capacity: usize,
        faults: Option<Arc<FaultPlan>>,
        max_restarts: u32,
    ) -> Self {
        Core {
            sched: ClassedMutex::new(
                LockClass::Sched,
                Sched {
                    injector: VecDeque::new(),
                    locals: (0..workers).map(|_| VecDeque::new()).collect(),
                    queued: 0,
                    shutting_down: false,
                    alive: workers,
                    next_tag: 0,
                },
            ),
            work: Condvar::new(),
            capacity,
            faults,
            supervisor: ClassedMutex::new(LockClass::Supervisor, vec![0; workers]),
            max_restarts,
            restarts_total: AtomicU64::new(0),
        }
    }

    /// Queues `run` (injector, or worker-local when `to` is given),
    /// enforcing the admission capacity when `bounded`.
    fn push(
        &self,
        to: Option<usize>,
        run: BoxedRun<'a, S>,
        bounded: bool,
    ) -> Result<(), SubmitError> {
        let mut sched = self.sched.lock();
        // A dead pool (every worker's session construction panicked)
        // refuses like a shut-down one: accepting would strand the
        // ticket — nothing is left to run the job.
        if sched.shutting_down || sched.alive == 0 {
            return Err(SubmitError::ShuttingDown);
        }
        if bounded && sched.queued >= self.capacity {
            return Err(SubmitError::QueueFull {
                queue_depth: sched.queued,
                capacity: self.capacity,
            });
        }
        // Tag only under an installed plan: the fault hook is free
        // when off.
        let tag = if self.faults.is_some() {
            let tag = sched.next_tag;
            sched.next_tag += 1;
            tag
        } else {
            0
        };
        let job = Job { run, tag };
        match to {
            Some(worker) => sched.locals[worker].push_back(job),
            None => sched.injector.push_back(job),
        }
        sched.queued += 1;
        drop(sched);
        self.work.notify_all();
        Ok(())
    }

    /// The worker loop: execute until shutdown **and** every queue is
    /// empty — shutdown drains, it never abandons queued jobs.
    fn run_worker(&self, worker: usize, session: &mut S) {
        loop {
            let job = {
                let mut sched = self.sched.lock();
                loop {
                    if let Some(job) = sched.pop_for(worker) {
                        break Some(job);
                    }
                    if sched.shutting_down {
                        break None;
                    }
                    sched = locks::wait(&self.work, sched);
                }
            };
            match job {
                Some(job) => {
                    let run = self.apply_worker_fault(job);
                    (run.run)(session);
                }
                None => return,
            }
        }
    }

    /// The pool-side fault hook: consults the plan (when installed)
    /// for the popped job's tag. A `Delay` spins before returning the
    /// job; a `KillWorker` **re-queues the job first** — it was
    /// accepted, so its ticket must still resolve — and then panics
    /// the worker thread with no lock held, handing control to the
    /// supervisor path in [`supervise`].
    fn apply_worker_fault(&self, job: Job<'a, S>) -> Job<'a, S> {
        let Some(plan) = &self.faults else {
            return job;
        };
        match plan.take_worker_fault(job.tag) {
            None => job,
            Some(WorkerFault::Delay { spins }) => {
                fault::spin(spins);
                job
            }
            Some(WorkerFault::KillWorker) => {
                {
                    let mut sched = self.sched.lock();
                    sched.injector.push_front(job);
                    sched.queued += 1;
                }
                self.work.notify_all();
                // cfva-lint: allow(L002, reason = "the injected kill IS the fault being tested; it fires outside every lock and the supervisor path recovers it")
                panic!("injected fault: worker killed by FaultPlan");
            }
        }
    }

    /// Records a restart for `worker` against its budget. `true` grants
    /// the restart (and counts it); `false` means the budget is spent
    /// and the worker must bow out through [`Core::abandon_worker`].
    fn note_restart(&self, worker: usize) -> bool {
        {
            let mut ledger = self.supervisor.lock();
            if ledger[worker] >= self.max_restarts {
                return false;
            }
            ledger[worker] += 1;
        }
        self.restarts_total.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// A worker whose `make` closure panicked: it never serves. The
    /// last live worker to fall takes every queued job down with it —
    /// dropping a job resolves its ticket as panicked (see
    /// [`Completer`]), so waiters get a panic, not a hang. (While any
    /// worker remains alive, queued jobs are simply left for it to
    /// pop or steal.)
    fn abandon_worker(&self) {
        let orphans: Vec<Job<'a, S>> = {
            let mut sched = self.sched.lock();
            sched.alive -= 1;
            if sched.alive > 0 {
                Vec::new()
            } else {
                sched.queued = 0;
                let mut orphans: Vec<Job<'a, S>> = sched.injector.drain(..).collect();
                for local in &mut sched.locals {
                    orphans.extend(local.drain(..));
                }
                orphans
            }
        };
        drop(orphans);
    }

    fn begin_shutdown(&self) {
        self.sched.lock().shutting_down = true;
        self.work.notify_all();
    }

    fn queue_depth(&self) -> usize {
        self.sched.lock().queued
    }
}

/// How one job ended, as seen by its [`Ticket`].
enum Slot<R> {
    Pending,
    Done(R),
    /// The job panicked on its worker; the payload's message.
    Panicked(String),
    /// The result was already taken by [`Ticket::poll`].
    Taken,
    /// The ticket was dropped while the job was still pending (e.g.
    /// after a [`Ticket::wait_timeout`] the caller gave up on). The
    /// job still runs — it was accepted — but its result (or panic
    /// payload) is **discarded at completion** instead of parked in
    /// the slot for as long as the completer side keeps it alive.
    Abandoned,
}

struct TicketShared<R> {
    slot: ClassedMutex<Slot<R>>,
    done: Condvar,
}

/// A future-like completion handle for one submitted job.
///
/// Resolved exactly once by the worker that executes the job; the
/// result is **taken** by whichever of [`poll`](Ticket::poll) /
/// [`wait`](Ticket::wait) / [`wait_timeout`](Ticket::wait_timeout)
/// observes it first. If the job panicked on its worker, the panic is
/// re-raised (with its message) at the take site — a pool worker never
/// dies with the panic.
#[must_use = "a Ticket is the only handle to the request's result; drop it and the result is lost"]
pub struct Ticket<R> {
    shared: Arc<TicketShared<R>>,
}

impl<R> std::fmt::Debug for Ticket<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("ready", &self.is_ready())
            .finish()
    }
}

impl<R> Ticket<R> {
    /// A ticket born resolved — the serving layer's cache-hit path:
    /// the result is already known, so no worker is involved and
    /// `wait`/`poll` return immediately.
    pub(crate) fn ready(result: R) -> Self {
        Ticket {
            shared: Arc::new(TicketShared {
                slot: ClassedMutex::new(LockClass::TicketSlot, Slot::Done(result)),
                done: Condvar::new(),
            }),
        }
    }

    fn new() -> (Self, Arc<TicketShared<R>>) {
        let shared = Arc::new(TicketShared {
            slot: ClassedMutex::new(LockClass::TicketSlot, Slot::Pending),
            done: Condvar::new(),
        });
        (
            Ticket {
                shared: Arc::clone(&shared),
            },
            shared,
        )
    }

    /// Whether the job has finished (the result — or its panic — is
    /// ready to take).
    pub fn is_ready(&self) -> bool {
        !matches!(*self.shared.slot.lock(), Slot::Pending)
    }

    /// Non-blocking take: `Some(result)` once the job has finished,
    /// `None` while it is still queued or running (and after the
    /// result has already been taken).
    ///
    /// # Panics
    ///
    /// Re-raises the job's panic if it panicked on its worker.
    pub fn poll(&mut self) -> Option<R> {
        let mut slot = self.shared.slot.lock();
        Self::take(&mut slot)
    }

    /// Blocks until the job finishes and returns its result.
    ///
    /// # Panics
    ///
    /// Re-raises the job's panic if it panicked on its worker, and
    /// panics if the result was already taken through
    /// [`poll`](Ticket::poll).
    pub fn wait(self) -> R {
        let mut slot = self.shared.slot.lock();
        loop {
            if let Some(result) = Self::take(&mut slot) {
                return result;
            }
            if matches!(*slot, Slot::Taken) {
                // cfva-lint: allow(L002, reason = "documented # Panics contract: double-take is a caller bug, not a load condition")
                panic!("ticket result already taken by poll()");
            }
            slot = locks::wait(&self.shared.done, slot);
        }
    }

    /// Like [`wait`](Ticket::wait), but gives up after `timeout`,
    /// handing the still-pending ticket back as `Err` so the caller
    /// can keep polling or waiting.
    #[must_use = "on timeout the still-pending ticket comes back in the Err; dropping it loses the result"]
    pub fn wait_timeout(self, timeout: Duration) -> Result<R, Ticket<R>> {
        let deadline = std::time::Instant::now() + timeout;
        let mut slot = self.shared.slot.lock();
        loop {
            if let Some(result) = Self::take(&mut slot) {
                return Ok(result);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                drop(slot);
                return Err(self);
            }
            (slot, _) = locks::wait_timeout(&self.shared.done, slot, deadline - now);
        }
    }

    fn take(slot: &mut Slot<R>) -> Option<R> {
        match std::mem::replace(slot, Slot::Taken) {
            Slot::Done(result) => Some(result),
            // cfva-lint: allow(L002, reason = "deliberate re-raise of the job's own panic at the take site, per the Ticket contract")
            Slot::Panicked(msg) => panic!("pool job panicked: {msg}"),
            Slot::Pending => {
                *slot = Slot::Pending;
                None
            }
            // Unreachable while a Ticket is alive (only its own Drop
            // writes Abandoned), but harmless to preserve.
            Slot::Abandoned => {
                *slot = Slot::Abandoned;
                None
            }
            Slot::Taken => None,
        }
    }
}

impl<R> Drop for Ticket<R> {
    /// Marks a still-pending slot **abandoned**, so the job side
    /// discards the result instead of parking it in the slot (see
    /// [`Slot::Abandoned`]).
    ///
    /// Runs on every drop — including during an unwind out of
    /// [`Ticket::wait`]'s panic re-raise, which poisons the slot's
    /// mutex — so it takes the poison-recovering, checker-free lock
    /// path: panicking here would be a double panic (process abort).
    fn drop(&mut self) {
        let mut slot = self.shared.slot.lock_unchecked();
        if matches!(*slot, Slot::Pending) {
            *slot = Slot::Abandoned;
        }
    }
}

/// The job-side half of a ticket: resolves it exactly once, and — the
/// load-bearing part — resolves it as *panicked* from `Drop` if the
/// job is destroyed without ever running (a dead pool dropping its
/// queue), so no interleaving leaves a waiter blocked on a ticket
/// nothing will ever complete.
struct Completer<R> {
    shared: Arc<TicketShared<R>>,
    completed: bool,
}

impl<R> Completer<R> {
    /// Resolves the slot — unless the ticket was dropped while the job
    /// was pending, in which case the outcome (result or panic
    /// payload) is discarded on the spot: nothing will ever take it,
    /// so parking it would hold the allocation for as long as the
    /// completer side lives.
    ///
    /// Uses the checker-free, poison-recovering lock path because the
    /// completer may resolve from `Drop` during an unwind (a dying
    /// pool dropping its queue); a panic here would abort.
    fn complete(&mut self, outcome: Slot<R>) {
        let mut slot = self.shared.slot.lock_unchecked();
        if matches!(*slot, Slot::Abandoned) {
            *slot = Slot::Taken;
        } else {
            *slot = outcome;
        }
        drop(slot);
        self.shared.done.notify_all();
        self.completed = true;
    }
}

impl<R> Drop for Completer<R> {
    fn drop(&mut self) {
        if !self.completed {
            self.complete(Slot::Panicked(
                "job dropped before it could run (every pool worker's session \
                 construction panicked?)"
                    .to_string(),
            ));
        }
    }
}

/// Wraps a result-returning job into a queueable [`Job`] plus the
/// [`Ticket`] that observes it. Panics are caught on the worker and
/// re-raised at the ticket, so one bad request cannot kill a worker
/// (the session is handed back; `BatchRunner` scratch is rebuilt on
/// the next measurement, so a torn session state is harmless).
pub(crate) fn package<'a, S, R, F>(job: F) -> (BoxedRun<'a, S>, Ticket<R>)
where
    F: FnOnce(&mut S) -> R + Send + 'a,
    R: Send + 'a,
{
    let (ticket, shared) = Ticket::new();
    let mut completer = Completer {
        shared,
        completed: false,
    };
    let boxed: BoxedRun<'a, S> = Box::new(move |session: &mut S| {
        let outcome = catch_unwind(AssertUnwindSafe(|| job(session)));
        completer.complete(match outcome {
            Ok(result) => Slot::Done(result),
            Err(payload) => Slot::Panicked(panic_message(payload.as_ref())),
        });
    });
    (boxed, ticket)
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Long-lived pool knobs beyond worker count and queue capacity —
/// fault injection and the supervisor's restart budget.
#[derive(Debug, Clone)]
pub struct PoolOptions {
    /// The fault plan to inject from, or `None` (the default) for a
    /// clean pool with zero-cost hooks.
    pub faults: Option<Arc<FaultPlan>>,
    /// Restart budget **per worker** before the supervisor gives the
    /// worker up (defaults to
    /// [`PoolOptions::DEFAULT_MAX_RESTARTS`]; a zero budget disables
    /// supervision entirely).
    pub max_restarts: u32,
}

impl Default for PoolOptions {
    fn default() -> Self {
        PoolOptions::new()
    }
}

impl PoolOptions {
    /// Default per-worker restart budget: generous enough for any
    /// plausible chaos schedule, small enough to bound a crash loop.
    pub const DEFAULT_MAX_RESTARTS: u32 = 16;

    /// Options with no fault plan and the default restart budget.
    pub fn new() -> Self {
        PoolOptions {
            faults: None,
            max_restarts: Self::DEFAULT_MAX_RESTARTS,
        }
    }

    /// Installs a fault plan.
    #[must_use]
    pub fn faults(mut self, plan: Arc<FaultPlan>) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Replaces the per-worker restart budget.
    #[must_use]
    pub fn max_restarts(mut self, budget: u32) -> Self {
        self.max_restarts = budget;
        self
    }
}

/// A long-lived work-stealing pool whose workers each own a session of
/// type `S`, built on the worker's own thread.
///
/// See the [module docs](self) for the scheduling shape. Dropping the
/// pool shuts it down and **drains**: every already-accepted job runs
/// to completion first.
///
/// # Supervision
///
/// A worker thread that dies *outside* a job (job panics are caught at
/// the job boundary — only an injected kill or a substrate bug gets
/// here) is *supervised*: the dying thread records the restart against
/// its per-worker budget ([`PoolOptions::max_restarts`]), spawns a
/// replacement that rebuilds the session from scratch, and joins it —
/// so [`Pool::shutdown`]'s join of the original handle transitively
/// joins the whole restart chain. The dead worker's local queue lives
/// in the shared scheduler, so the replacement (or a stealing peer)
/// finishes its backlog: every accepted ticket still resolves. Past
/// the budget the worker bows out through the same abandonment path as
/// a worker whose session never constructed.
pub struct Pool<S: 'static> {
    core: Arc<Core<'static, S>>,
    handles: ClassedMutex<Vec<std::thread::JoinHandle<()>>>,
    workers: usize,
}

impl<S> std::fmt::Debug for Pool<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("workers", &self.workers)
            .field("capacity", &self.core.capacity)
            .field("queue_depth", &self.core.queue_depth())
            .field("restarts", &self.restarts())
            .finish()
    }
}

impl<S: 'static> Pool<S> {
    /// Spawns `workers` threads, each building its session with
    /// `make(worker_index)` on its own thread. `capacity` bounds the
    /// admission queue enforced by the `try_submit*` flavors
    /// (unbounded submission ignores it).
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0` or `capacity == 0`.
    pub fn new<F>(workers: usize, capacity: usize, make: F) -> Self
    where
        F: Fn(usize) -> S + Send + Sync + 'static,
    {
        Pool::with_options(workers, capacity, PoolOptions::new(), make)
    }

    /// [`new`](Self::new) with explicit [`PoolOptions`] — fault
    /// injection and the supervisor's restart budget.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0` or `capacity == 0`.
    pub fn with_options<F>(workers: usize, capacity: usize, options: PoolOptions, make: F) -> Self
    where
        F: Fn(usize) -> S + Send + Sync + 'static,
    {
        assert!(workers >= 1, "a pool needs at least one worker");
        assert!(capacity >= 1, "admission capacity must be at least 1");
        let core = Arc::new(Core::with_faults(
            workers,
            capacity,
            options.faults,
            options.max_restarts,
        ));
        let make = Arc::new(make);
        let handles = (0..workers)
            .map(|worker| {
                let core = Arc::clone(&core);
                let make = Arc::clone(&make);
                std::thread::spawn(move || supervise(core, make, worker))
            })
            .collect();
        Pool {
            core,
            handles: ClassedMutex::new(LockClass::Handles, handles),
            workers,
        }
    }

    /// The worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Worker restarts the supervisor has performed so far.
    pub fn restarts(&self) -> u64 {
        self.core.restarts_total.load(Ordering::Relaxed)
    }

    /// The admission-queue capacity enforced by the `try_submit*`
    /// flavors.
    pub fn capacity(&self) -> usize {
        self.core.capacity
    }

    /// Jobs currently queued (not yet picked up by a worker).
    pub fn queue_depth(&self) -> usize {
        self.core.queue_depth()
    }

    /// Queues `job` on the global injector, ignoring the admission
    /// bound — for owners feeding the pool a finite batch (sweeps).
    ///
    /// # Panics
    ///
    /// Panics if the pool is shutting down (the owner controls
    /// shutdown, so this is a caller bug, not a load condition).
    #[must_use = "the Ticket is the only handle to the job's result"]
    pub fn submit<R, F>(&self, job: F) -> Ticket<R>
    where
        F: FnOnce(&mut S) -> R + Send + 'static,
        R: Send + 'static,
    {
        let (job, ticket) = package(job);
        self.core
            .push(None, job, false)
            // cfva-lint: allow(L002, reason = "documented # Panics contract: the owner controls shutdown, so a refused unbounded submit is a caller bug")
            .expect("pool is not accepting work (shut down, or every worker session panicked at construction)");
        ticket
    }

    /// [`submit`](Self::submit) straight onto `worker`'s local queue —
    /// affinity submission; idle peers may still steal it.
    ///
    /// # Panics
    ///
    /// Panics if `worker >= self.workers()` or the pool is shutting
    /// down.
    #[must_use = "the Ticket is the only handle to the job's result"]
    pub fn submit_to<R, F>(&self, worker: usize, job: F) -> Ticket<R>
    where
        F: FnOnce(&mut S) -> R + Send + 'static,
        R: Send + 'static,
    {
        assert!(worker < self.workers, "no such worker: {worker}");
        let (job, ticket) = package(job);
        self.core
            .push(Some(worker), job, false)
            // cfva-lint: allow(L002, reason = "documented # Panics contract: the owner controls shutdown, so a refused unbounded submit is a caller bug")
            .expect("pool is not accepting work (shut down, or every worker session panicked at construction)");
        ticket
    }

    /// Bounded admission onto the injector: refused with
    /// [`SubmitError::QueueFull`] when `capacity` jobs are already
    /// waiting, or [`SubmitError::ShuttingDown`] after
    /// [`shutdown`](Self::shutdown) has begun.
    #[must_use = "the Ticket inside is the only handle to the job's result"]
    pub fn try_submit<R, F>(&self, job: F) -> Result<Ticket<R>, SubmitError>
    where
        F: FnOnce(&mut S) -> R + Send + 'static,
        R: Send + 'static,
    {
        let (job, ticket) = package(job);
        self.core.push(None, job, true).map(|()| ticket)
    }

    /// Bounded admission with worker affinity — the serving layer's
    /// entry: same-spec requests land on the same worker's queue so
    /// its session cache stays hot, and idle peers steal overflow.
    ///
    /// # Panics
    ///
    /// Panics if `worker >= self.workers()`.
    #[must_use = "the Ticket inside is the only handle to the job's result"]
    pub fn try_submit_to<R, F>(&self, worker: usize, job: F) -> Result<Ticket<R>, SubmitError>
    where
        F: FnOnce(&mut S) -> R + Send + 'static,
        R: Send + 'static,
    {
        assert!(worker < self.workers, "no such worker: {worker}");
        let (job, ticket) = package(job);
        self.core.push(Some(worker), job, true).map(|()| ticket)
    }

    /// Queues an already-packaged batch as **one** composite job on
    /// `worker`'s local queue: the member runs execute back to back on
    /// one worker with nothing interleaved between them — the admission
    /// batcher's contract for a co-scheduled wave. Unbounded (the
    /// batcher accounts its window against the admission capacity
    /// itself, before packaging). If the pool refuses (shutdown race),
    /// the composite is dropped and every member ticket resolves as
    /// panicked through its `Completer` — abandoned, never stranded.
    ///
    /// # Panics
    ///
    /// Panics if `worker >= self.workers()`.
    pub(crate) fn submit_sequence(
        &self,
        worker: usize,
        runs: Vec<BoxedRun<'static, S>>,
    ) -> Result<(), SubmitError> {
        assert!(worker < self.workers, "no such worker: {worker}");
        let composite: BoxedRun<'static, S> = Box::new(move |session: &mut S| {
            for run in runs {
                run(session);
            }
        });
        self.core.push(Some(worker), composite, false)
    }

    /// Graceful shutdown: no new work is admitted (further submission
    /// fails with [`SubmitError::ShuttingDown`]), every queued job is
    /// drained, in-flight jobs finish, then the workers exit and are
    /// joined. Every accepted ticket has resolved by the time this
    /// returns.
    ///
    /// Takes `&self` so a shared pool (e.g. behind an `Arc`) can be
    /// shut down while other handles still hold it. Exactly one caller
    /// performs the join; a *concurrent* second call stops admission
    /// too but may return before the drain completes.
    pub fn shutdown(&self) {
        self.core.begin_shutdown();
        let handles: Vec<_> = std::mem::take(&mut *self.handles.lock());
        for handle in handles {
            // cfva-lint: allow(L002, reason = "job panics are caught at the job boundary, so a dead worker thread means a cfva-serve bug; surfacing it beats swallowing it")
            handle.join().expect("pool worker panicked outside a job");
        }
    }
}

/// One supervised worker lifetime: build the session, serve, and —
/// should the thread die *outside* a job — restart on a fresh thread
/// within the per-worker budget (see [`Pool`]'s Supervision docs).
///
/// A panicking session **constructor** is not a supervised death: it
/// bows the worker out through the alive count (exactly the pre-
/// supervision behavior), because a constructor that panics once will
/// usually panic forever and the restart budget is better spent on
/// mid-service deaths.
fn supervise<S, F>(core: Arc<Core<'static, S>>, make: Arc<F>, worker: usize)
where
    S: 'static,
    F: Fn(usize) -> S + Send + Sync + 'static,
{
    let served = catch_unwind(AssertUnwindSafe(|| {
        match catch_unwind(AssertUnwindSafe(|| make(worker))) {
            Ok(mut session) => core.run_worker(worker, &mut session),
            Err(_) => core.abandon_worker(),
        }
    }));
    if served.is_err() {
        // The worker died mid-service: job panics are caught at the
        // job boundary, so this is an injected kill or a substrate
        // bug. Its local queue is shared scheduler state — the
        // replacement (or a stealing peer) picks the backlog up, so
        // every accepted ticket still resolves.
        if core.note_restart(worker) {
            let (respawn_core, respawn_make) = (Arc::clone(&core), Arc::clone(&make));
            let chain = std::thread::spawn(move || supervise(respawn_core, respawn_make, worker));
            // Chain-join: `Pool::shutdown` joins the original thread,
            // which transitively joins every link of the restart
            // chain — the drain guarantee survives any number of
            // restarts. The chain link itself never propagates a
            // panic (its own death re-enters this path).
            let _ = chain.join();
        } else {
            core.abandon_worker();
        }
    }
}

impl<S: 'static> Drop for Pool<S> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A borrowed handle to a scoped pool — same scheduler as [`Pool`],
/// but jobs may borrow from the caller's stack.
pub struct ScopedPool<'p, 'a, S> {
    core: &'p Core<'a, S>,
    workers: usize,
}

impl<S> std::fmt::Debug for ScopedPool<'_, '_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScopedPool")
            .field("workers", &self.workers)
            .finish()
    }
}

impl<'a, S> ScopedPool<'_, 'a, S> {
    /// The worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Queues `job` on the global injector (unbounded — the scope
    /// owner feeds a finite batch).
    #[must_use = "the Ticket is the only handle to the job's result"]
    pub fn submit<R, F>(&self, job: F) -> Ticket<R>
    where
        F: FnOnce(&mut S) -> R + Send + 'a,
        R: Send + 'a,
    {
        let (job, ticket) = package(job);
        self.core
            .push(None, job, false)
            // cfva-lint: allow(L002, reason = "documented contract: the scope owner never shuts down mid-body, so refusal means every worker died — panic over hang")
            .expect("scoped pool refused work (every worker session panicked at construction?)");
        ticket
    }

    /// Queues `job` on `worker`'s local queue; idle peers may steal it.
    ///
    /// # Panics
    ///
    /// Panics if `worker >= self.workers()`.
    #[must_use = "the Ticket is the only handle to the job's result"]
    pub fn submit_to<R, F>(&self, worker: usize, job: F) -> Ticket<R>
    where
        F: FnOnce(&mut S) -> R + Send + 'a,
        R: Send + 'a,
    {
        assert!(worker < self.workers, "no such worker: {worker}");
        let (job, ticket) = package(job);
        self.core
            .push(Some(worker), job, false)
            // cfva-lint: allow(L002, reason = "documented contract: the scope owner never shuts down mid-body, so refusal means every worker died — panic over hang")
            .expect("scoped pool refused work (every worker session panicked at construction?)");
        ticket
    }
}

/// Runs `f` against a temporary pool of `workers` threads whose jobs
/// may borrow from the enclosing scope — the substrate under
/// [`BatchRunner::sweep`](crate::runner::BatchRunner::sweep). Sessions
/// are built by `make(worker_index)` on each worker's own thread. When
/// `f` returns, the pool drains (every submitted job completes) and
/// the workers are joined.
pub fn scoped<'a, S, T, M, F>(workers: usize, make: M, f: F) -> T
where
    S: 'a,
    M: Fn(usize) -> S + Sync + 'a,
    F: for<'p> FnOnce(&'p ScopedPool<'p, 'a, S>) -> T,
{
    /// Flags shutdown when dropped, so the workers are released (and
    /// `thread::scope` can join them) however the scope body exits —
    /// including an unwind out of `f` (e.g. [`Ticket::wait`]
    /// re-raising a job panic). Without this, a panicking scope body
    /// would leave the workers parked on the condvar forever and turn
    /// the panic into a deadlock at the scope's implicit join.
    struct ShutdownOnDrop<'g, 'a, S>(&'g Core<'a, S>);
    impl<S> Drop for ShutdownOnDrop<'_, '_, S> {
        fn drop(&mut self) {
            self.0.begin_shutdown();
        }
    }

    assert!(workers >= 1, "a pool needs at least one worker");
    let core: Core<'a, S> = Core::new(workers, usize::MAX);
    let core = &core;
    let make = &make;
    std::thread::scope(move |scope| {
        for worker in 0..workers {
            scope.spawn(move || {
                // Same session-construction hygiene as `Pool::new`: a
                // panicking `make` abandons the worker (dropping the
                // queue once no worker is left, which resolves the
                // orphaned tickets as panicked) instead of stranding
                // the scope body in a wait nothing will satisfy.
                match catch_unwind(AssertUnwindSafe(|| make(worker))) {
                    Ok(mut session) => core.run_worker(worker, &mut session),
                    Err(_) => core.abandon_worker(),
                }
            });
        }
        // Drain-and-join before leaving: the guard flags shutdown when
        // `f` returns *or unwinds*; `thread::scope` then joins the
        // workers, which exit once shutdown is flagged AND the queues
        // are empty.
        let _release_workers = ShutdownOnDrop(core);
        f(&ScopedPool { core, workers })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{mpsc, Mutex};

    #[test]
    fn submit_and_wait_round_trip() {
        let pool = Pool::new(2, 16, |worker| worker);
        let t = pool.submit(|session: &mut usize| *session + 100);
        let value = t.wait();
        assert!(value == 100 || value == 101);
        pool.shutdown();
    }

    #[test]
    fn tickets_resolve_in_any_submission_pattern() {
        let pool = Pool::new(3, 64, |_| ());
        let tickets: Vec<Ticket<u64>> = (0..50u64)
            .map(|i| pool.submit(move |(): &mut ()| i * i))
            .collect();
        let results: Vec<u64> = tickets.into_iter().map(Ticket::wait).collect();
        assert_eq!(results, (0..50u64).map(|i| i * i).collect::<Vec<_>>());
        pool.shutdown();
    }

    #[test]
    fn poll_is_none_until_done_then_takes_once() {
        let pool = Pool::new(1, 4, |_| ());
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let stall = pool.submit(move |(): &mut ()| gate_rx.recv().unwrap());
        let mut t = pool.submit(|(): &mut ()| 7u32);
        assert!(!t.is_ready());
        assert_eq!(t.poll(), None);
        gate_tx.send(()).unwrap();
        stall.wait();
        // The only worker is free now; the job completes promptly.
        let mut t = match t.wait_timeout(Duration::from_secs(10)) {
            Ok(v) => {
                assert_eq!(v, 7);
                return;
            }
            Err(t) => t,
        };
        // Timed out (absurd on a 10 s budget, but poll must still work).
        while t.poll().is_none() {
            std::thread::yield_now();
        }
    }

    #[test]
    fn wait_timeout_returns_ticket_on_pending_job() {
        let pool = Pool::new(1, 4, |_| ());
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let stall = pool.submit(move |(): &mut ()| gate_rx.recv().unwrap());
        let t = pool.submit(|(): &mut ()| 1u8);
        let t = t
            .wait_timeout(Duration::from_millis(10))
            .expect_err("worker is stalled; the job cannot have run");
        gate_tx.send(()).unwrap();
        stall.wait();
        assert_eq!(t.wait(), 1);
    }

    #[test]
    fn panicking_job_resolves_ticket_and_spares_the_worker() {
        let pool = Pool::new(1, 4, |_| ());
        let t = pool.submit(|(): &mut ()| -> () { panic!("bad request") });
        let outcome = catch_unwind(AssertUnwindSafe(move || t.wait()));
        let msg = panic_message(outcome.expect_err("job panicked").as_ref());
        assert!(msg.contains("bad request"), "{msg}");
        // The worker survived and still serves.
        assert_eq!(pool.submit(|(): &mut ()| 3u8).wait(), 3);
        pool.shutdown();
    }

    #[test]
    fn scoped_jobs_borrow_from_the_stack() {
        let data: Vec<u64> = (0..100).collect();
        let total: u64 = scoped(
            3,
            |_| (),
            |pool| {
                let tickets: Vec<Ticket<u64>> = data
                    .chunks(7)
                    .map(|chunk| pool.submit(move |(): &mut ()| chunk.iter().sum::<u64>()))
                    .collect();
                tickets.into_iter().map(Ticket::wait).sum()
            },
        );
        assert_eq!(total, data.iter().sum::<u64>());
    }

    #[test]
    fn scope_body_panic_propagates_instead_of_deadlocking() {
        // `Ticket::wait` re-raises a job panic *inside* the scope
        // body; the shutdown guard must still release the workers so
        // thread::scope can join and the panic propagates — the
        // failure mode being pinned here is a hang, not a wrong value.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            scoped(
                2,
                |_| (),
                |pool| {
                    let t = pool.submit(|(): &mut ()| -> u32 { panic!("job boom") });
                    t.wait()
                },
            )
        }));
        let msg = panic_message(outcome.expect_err("panic must propagate").as_ref());
        assert!(msg.contains("job boom"), "{msg}");
    }

    #[test]
    fn panicking_session_constructor_panics_the_waiter_instead_of_hanging() {
        // Whether the submission races ahead of the worker deaths
        // (job queued, then dropped by the last dying worker → ticket
        // resolves panicked) or behind them (dead pool refuses, the
        // unbounded submit's expect fires), the caller gets a panic —
        // the pinned failure mode is a hang.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            scoped(
                2,
                |_| -> () { panic!("make boom") },
                |pool| pool.submit(|(): &mut ()| 1u32).wait(),
            )
        }));
        assert!(outcome.is_err(), "a dead scoped pool must panic, not hang");
    }

    #[test]
    fn dead_long_lived_pool_refuses_or_panics_but_never_strands() {
        let pool: Pool<()> = Pool::new(2, 8, |_| panic!("make boom"));
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            match pool.try_submit(|(): &mut ()| 1u32) {
                // Accepted before the workers died: the dropped job
                // resolves the ticket as panicked.
                Ok(ticket) => ticket.wait(),
                // The pool was already dead at submission.
                Err(e) => {
                    assert_eq!(e, SubmitError::ShuttingDown);
                    panic!("refused: {e}")
                }
            }
        }));
        assert!(outcome.is_err(), "a dead pool must panic, not hang");
        pool.shutdown();
    }

    #[test]
    fn scoped_drains_unwaited_tickets_before_returning() {
        let counter = Mutex::new(0u32);
        scoped(
            2,
            |_| (),
            |pool| {
                for _ in 0..20 {
                    // Deliberately dropped tickets: the scope must
                    // still run every job before unwinding.
                    let _ = pool.submit(|(): &mut ()| {
                        *counter.lock().unwrap() += 1;
                    });
                }
            },
        );
        assert_eq!(*counter.lock().unwrap(), 20);
    }

    #[test]
    fn capacity_accessors_report_configuration() {
        let pool: Pool<()> = Pool::new(2, 5, |_| ());
        assert_eq!(pool.workers(), 2);
        assert_eq!(pool.capacity(), 5);
        assert_eq!(pool.queue_depth(), 0);
    }

    #[test]
    fn abandoned_ticket_discards_result_but_job_still_runs() {
        use std::sync::atomic::AtomicU32;
        let ran = Arc::new(AtomicU32::new(0));
        let pool = Pool::new(1, 8, |_| ());
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let stall = pool.submit(move |(): &mut ()| gate_rx.recv().unwrap());
        let counted = Arc::clone(&ran);
        // Dropped before it can run: the slot flips to Abandoned, the
        // job still executes (accepted work always runs), and the
        // completer discards the now-unwanted result.
        drop(pool.submit(move |(): &mut ()| counted.fetch_add(1, Ordering::Relaxed)));
        gate_tx.send(()).unwrap();
        stall.wait();
        pool.shutdown();
        assert_eq!(ran.load(Ordering::Relaxed), 1, "abandoned job must run");
    }

    #[test]
    fn injected_kill_restarts_worker_and_job_still_resolves() {
        let plan = Arc::new(FaultPlan::new().kill_worker_at(0));
        let options = PoolOptions::new().faults(plan);
        let pool = Pool::with_options(1, 8, options, |_| ());
        // Tag 0: the first accepted job. Its pop trips KillWorker — the
        // job is re-queued, the worker thread dies, the supervisor
        // restarts it, and the restarted worker serves the job.
        let t = pool.submit(|(): &mut ()| 41u32 + 1);
        assert_eq!(t.wait(), 42);
        assert_eq!(pool.restarts(), 1);
        pool.shutdown();
    }

    #[test]
    fn exhausted_restart_budget_abandons_instead_of_looping() {
        // Two kills against a zero restart budget: the first killed
        // worker is abandoned outright. With every worker gone the
        // pool drops its orphans, so the ticket resolves (panicked)
        // rather than stranding the caller.
        let plan = Arc::new(FaultPlan::new().kill_worker_at(0));
        let options = PoolOptions::new().faults(plan).max_restarts(0);
        let pool = Pool::with_options(1, 8, options, |_| ());
        let t = pool.submit(|(): &mut ()| 1u32);
        let outcome = catch_unwind(AssertUnwindSafe(move || t.wait()));
        assert!(outcome.is_err(), "orphaned ticket must resolve by panic");
        assert_eq!(pool.restarts(), 0);
        pool.shutdown();
    }

    #[test]
    fn panic_during_shutdown_drain_still_resolves_every_ticket() {
        let pool = Pool::new(1, 32, |_| ());
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let stall = pool.submit(move |(): &mut ()| gate_rx.recv().unwrap());
        let panicker = pool.submit(|(): &mut ()| -> u32 { panic!("mid-drain boom") });
        let tickets: Vec<Ticket<u64>> = (0..10u64)
            .map(|i| pool.submit(move |(): &mut ()| i))
            .collect();
        std::thread::scope(|scope| {
            let drainer = scope.spawn(|| pool.shutdown());
            gate_tx.send(()).unwrap();
            stall.wait();
            let outcome = catch_unwind(AssertUnwindSafe(move || panicker.wait()));
            assert!(outcome.is_err(), "the panicking job resolves by re-raise");
            for (i, t) in tickets.into_iter().enumerate() {
                assert_eq!(t.wait(), i as u64, "drained jobs resolve normally");
            }
            drainer.join().expect("shutdown survives a draining panic");
        });
    }

    #[test]
    fn injected_kill_during_shutdown_drain_recovers_and_drains() {
        // Kill the worker mid-drain (tag 3 is popped while shutdown is
        // draining the queue): the supervisor must restart it and the
        // restarted worker must finish the drain.
        let plan = Arc::new(FaultPlan::new().kill_worker_at(3));
        let options = PoolOptions::new().faults(plan);
        let pool = Pool::with_options(1, 32, options, |_| ());
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let stall = pool.submit(move |(): &mut ()| gate_rx.recv().unwrap());
        let tickets: Vec<Ticket<u64>> = (0..10u64)
            .map(|i| pool.submit(move |(): &mut ()| i))
            .collect();
        std::thread::scope(|scope| {
            let drainer = scope.spawn(|| pool.shutdown());
            gate_tx.send(()).unwrap();
            stall.wait();
            for (i, t) in tickets.into_iter().enumerate() {
                assert_eq!(t.wait(), i as u64);
            }
            drainer.join().expect("shutdown joins the restart chain");
        });
        assert_eq!(pool.restarts(), 1);
    }

    #[test]
    fn delay_fault_only_slows_the_job_down() {
        let plan = Arc::new(FaultPlan::new().delay_at(0, 64));
        let options = PoolOptions::new().faults(plan.clone());
        let pool = Pool::with_options(1, 8, options, |_| ());
        assert_eq!(pool.submit(|(): &mut ()| 5u8).wait(), 5);
        assert_eq!(plan.injected(), 1);
        assert_eq!(pool.restarts(), 0);
        pool.shutdown();
    }
}
