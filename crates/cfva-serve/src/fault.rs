//! Deterministic fault injection for the serving substrate.
//!
//! A [`FaultPlan`] is a *seeded, reproducible* schedule of failures:
//! it decides **up front** — from a `u64` seed or an explicit builder —
//! which pool jobs die, which are artificially delayed, which service
//! submissions panic on their worker, where queue-pressure bursts land
//! and when the result cache is poisoned. Nothing here consults the
//! wall clock or an ambient RNG (the schedule is a pure function of
//! the seed, same discipline cfva-lint's L003 enforces on the engine
//! crates), so a chaos run replays bit-identically: the same seed
//! produces the same faults at the same submission indices on every
//! machine.
//!
//! # Wiring
//!
//! * [`ServiceConfig::fault_plan`](crate::service::ServiceConfig) hands
//!   one plan to both the service (submission-indexed faults,
//!   [`SubmitFault`]) and its pool (job-indexed faults,
//!   [`WorkerFault`]).
//! * When no plan is installed the hooks cost nothing: the pool skips
//!   even the per-job sequence counter, and the service's per-submit
//!   check is a `None` branch.
//! * Every scheduled fault fires **at most once** (an atomic
//!   take-once flag per scheduled index): a job re-queued after an
//!   injected worker kill, or retried after an injected panic, runs
//!   clean on its second attempt — which is what makes bounded retry a
//!   sound recovery strategy under injection.
//!
//! The injector is the *proof harness* for the self-healing machinery
//! in [`pool`](crate::pool) and [`service`](crate::service): the chaos
//! suite (`tests/chaos.rs`) asserts that under any seeded plan every
//! accepted ticket still resolves, shutdown still drains, and results
//! stay bit-identical to the fault-free run.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A fault the pool injects at one of its job sequence numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerFault {
    /// Kill the worker thread that popped the job: the job is re-queued
    /// first (it must still resolve), then the worker panics outside
    /// every lock — exercising the supervisor's restart path.
    KillWorker,
    /// Spin the worker for `spins` busy-loop iterations before running
    /// the job — a stuck-job stand-in that needs no wall clock.
    Delay {
        /// Busy-loop iterations (`std::hint::spin_loop`).
        spins: u32,
    },
}

/// A fault the service injects at one of its submission indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitFault {
    /// The submission's first execution attempt panics on its worker —
    /// exercising retry-with-backoff (the retry runs clean).
    PanicJob,
    /// Flood the admission queue with `jobs` no-op jobs right before
    /// this submission — queue-pressure exercising backpressure and
    /// the degraded fallback.
    QueueBurst {
        /// Number of no-op filler jobs.
        jobs: u32,
    },
    /// Drop every entry of the result cache before this submission —
    /// a poisoned/invalidated cache must only cost recomputation,
    /// never correctness.
    PoisonCache,
}

/// A scheduled fault that fires at most once.
#[derive(Debug)]
struct Armed<F> {
    fault: F,
    fired: AtomicBool,
}

impl<F: Copy> Armed<F> {
    fn new(fault: F) -> Self {
        Armed {
            fault,
            fired: AtomicBool::new(false),
        }
    }

    /// The fault, the first time only.
    fn take(&self) -> Option<F> {
        (!self.fired.swap(true, Ordering::Relaxed)).then_some(self.fault)
    }
}

/// A deterministic schedule of injected faults. See the
/// [module docs](self).
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Pool job sequence number → fault.
    worker: HashMap<u64, Armed<WorkerFault>>,
    /// Service submission index → fault.
    submit: HashMap<u64, Armed<SubmitFault>>,
    /// Faults actually fired so far (worker + submit).
    injected: AtomicU64,
}

impl FaultPlan {
    /// An empty plan to grow with the `*_at` builder methods.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// A pseudo-random plan over the first `horizon` indices, derived
    /// entirely from `seed` (SplitMix64 — no ambient RNG): roughly one
    /// index in six gets a fault, with every [`WorkerFault`] and
    /// [`SubmitFault`] kind represented in the mix. Worker and
    /// submission schedules are drawn independently, so pool-side and
    /// service-side faults interleave freely.
    pub fn seeded(seed: u64, horizon: u64) -> Self {
        let mut plan = FaultPlan::new();
        for i in 0..horizon {
            let w = splitmix64(seed ^ 0x9e37_79b9_7f4a_7c15, i);
            if w.is_multiple_of(6) {
                let fault = match (w >> 8) % 3 {
                    0 => WorkerFault::KillWorker,
                    _ => WorkerFault::Delay {
                        spins: 1 + (w >> 16) as u32 % 4096,
                    },
                };
                plan.worker.insert(i, Armed::new(fault));
            }
            let s = splitmix64(seed ^ 0x2545_f491_4f6c_dd1d, i);
            if s.is_multiple_of(6) {
                let fault = match (s >> 8) % 4 {
                    0 => SubmitFault::PoisonCache,
                    1 => SubmitFault::QueueBurst {
                        jobs: 1 + (s >> 16) as u32 % 8,
                    },
                    _ => SubmitFault::PanicJob,
                };
                plan.submit.insert(i, Armed::new(fault));
            }
        }
        plan
    }

    /// Schedules a [`WorkerFault::KillWorker`] at pool job `seq`.
    #[must_use]
    pub fn kill_worker_at(mut self, seq: u64) -> Self {
        self.worker.insert(seq, Armed::new(WorkerFault::KillWorker));
        self
    }

    /// Schedules a [`WorkerFault::Delay`] of `spins` at pool job `seq`.
    #[must_use]
    pub fn delay_at(mut self, seq: u64, spins: u32) -> Self {
        self.worker
            .insert(seq, Armed::new(WorkerFault::Delay { spins }));
        self
    }

    /// Schedules a [`SubmitFault::PanicJob`] at submission `index`.
    #[must_use]
    pub fn panic_at(mut self, index: u64) -> Self {
        self.submit.insert(index, Armed::new(SubmitFault::PanicJob));
        self
    }

    /// Schedules a [`SubmitFault::QueueBurst`] at submission `index`.
    #[must_use]
    pub fn burst_at(mut self, index: u64, jobs: u32) -> Self {
        self.submit
            .insert(index, Armed::new(SubmitFault::QueueBurst { jobs }));
        self
    }

    /// Schedules a [`SubmitFault::PoisonCache`] at submission `index`.
    #[must_use]
    pub fn poison_cache_at(mut self, index: u64) -> Self {
        self.submit
            .insert(index, Armed::new(SubmitFault::PoisonCache));
        self
    }

    /// The fault scheduled for pool job `seq`, fired at most once.
    pub fn take_worker_fault(&self, seq: u64) -> Option<WorkerFault> {
        let fault = self.worker.get(&seq).and_then(Armed::take);
        if fault.is_some() {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        fault
    }

    /// The fault scheduled for submission `index`, fired at most once.
    pub fn take_submit_fault(&self, index: u64) -> Option<SubmitFault> {
        let fault = self.submit.get(&index).and_then(Armed::take);
        if fault.is_some() {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        fault
    }

    /// Faults fired so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Faults scheduled (fired or not): worker-side, submit-side.
    pub fn scheduled(&self) -> (usize, usize) {
        (self.worker.len(), self.submit.len())
    }
}

/// SplitMix64 of `seed` advanced `n` steps — the plan's only source of
/// randomness, chosen for its tiny, dependency-free, stable definition.
fn splitmix64(seed: u64, n: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(n.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Busy-spins for `spins` iterations — the deterministic stand-in for
/// "this job is slow" (no `thread::sleep`, no wall clock).
pub fn spin(spins: u32) {
    for _ in 0..spins {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible() {
        let a = FaultPlan::seeded(42, 256);
        let b = FaultPlan::seeded(42, 256);
        for i in 0..256 {
            assert_eq!(a.take_worker_fault(i), b.take_worker_fault(i), "seq {i}");
            assert_eq!(a.take_submit_fault(i), b.take_submit_fault(i), "idx {i}");
        }
        assert_eq!(a.injected(), b.injected());
    }

    #[test]
    fn seeded_plans_cover_every_fault_kind() {
        // One generous horizon must exercise every variant — otherwise
        // the chaos suite would silently stop testing a recovery path.
        let plan = FaultPlan::seeded(7, 4096);
        let (mut kills, mut delays, mut panics, mut bursts, mut poisons) = (0, 0, 0, 0, 0);
        for i in 0..4096 {
            match plan.take_worker_fault(i) {
                Some(WorkerFault::KillWorker) => kills += 1,
                Some(WorkerFault::Delay { .. }) => delays += 1,
                None => {}
            }
            match plan.take_submit_fault(i) {
                Some(SubmitFault::PanicJob) => panics += 1,
                Some(SubmitFault::QueueBurst { .. }) => bursts += 1,
                Some(SubmitFault::PoisonCache) => poisons += 1,
                None => {}
            }
        }
        assert!(
            kills > 0 && delays > 0 && panics > 0 && bursts > 0 && poisons > 0,
            "kinds: {kills} kills, {delays} delays, {panics} panics, {bursts} bursts, {poisons} poisons"
        );
    }

    #[test]
    fn faults_fire_exactly_once() {
        let plan = FaultPlan::new().kill_worker_at(3).panic_at(5);
        assert_eq!(plan.take_worker_fault(3), Some(WorkerFault::KillWorker));
        assert_eq!(plan.take_worker_fault(3), None, "fired already");
        assert_eq!(plan.take_submit_fault(5), Some(SubmitFault::PanicJob));
        assert_eq!(plan.take_submit_fault(5), None, "fired already");
        assert_eq!(plan.take_worker_fault(4), None, "never scheduled");
        assert_eq!(plan.injected(), 2);
        assert_eq!(plan.scheduled(), (1, 1));
    }

    #[test]
    fn builder_kinds_round_trip() {
        let plan = FaultPlan::new()
            .delay_at(0, 17)
            .burst_at(1, 9)
            .poison_cache_at(2);
        assert_eq!(
            plan.take_worker_fault(0),
            Some(WorkerFault::Delay { spins: 17 })
        );
        assert_eq!(
            plan.take_submit_fault(1),
            Some(SubmitFault::QueueBurst { jobs: 9 })
        );
        assert_eq!(plan.take_submit_fault(2), Some(SubmitFault::PoisonCache));
        spin(17); // the delay helper itself must be callable and finite
    }
}
