//! Lock classes and the debug-build lock-order checker.
//!
//! # The hierarchy: every lock is a leaf
//!
//! The serving layer owns ten lock classes ([`LockClass`]): the
//! scheduler ([`Sched`](LockClass::Sched)), the per-ticket result slot
//! ([`TicketSlot`](LockClass::TicketSlot)), the worker-handle registry
//! ([`Handles`](LockClass::Handles)), the per-spec metadata map
//! ([`SpecMeta`](LockClass::SpecMeta)), the result-cache shards
//! ([`CacheShard`](LockClass::CacheShard)), the pool supervisor's
//! restart ledger ([`Supervisor`](LockClass::Supervisor)), the
//! degraded-fallback session map
//! ([`DegradedSessions`](LockClass::DegradedSessions)) and the
//! conflict-aware admission window
//! ([`SchedWindow`](LockClass::SchedWindow)), the wire front end's
//! connection registry ([`WireConns`](LockClass::WireConns)) and the
//! wire codec's `&'static str` intern pool
//! ([`WireIntern`](LockClass::WireIntern)) — the last two acquired
//! only by `cfva-wire`, which reuses this module rather than growing
//! a second lock discipline. The concurrency design keeps the
//! hierarchy deliberately **flat**: a thread holds at most one of
//! them at a time.
//!
//! * Workers pop a job under `Sched`, release, *then* run it — ticket
//!   resolution (`TicketSlot`) happens strictly after the scheduler
//!   lock is gone.
//! * Cache lookups and population (`CacheShard`) happen before
//!   submission or after completion, never inside either lock.
//! * `Handles` is touched only by `shutdown`, after admission closes.
//! * `Supervisor` is touched only on the worker-death path: a dying
//!   worker thread records its restart (and reads the restart budget)
//!   *after* every scheduler guard is gone — the respawn itself, and
//!   any subsequent `Sched` acquisition by the replacement, happens
//!   strictly outside the ledger lock.
//! * `DegradedSessions` guards the submit-side analytic fallback's
//!   session map; the fallback computes entirely on the caller's
//!   thread with no other serve lock held.
//! * `SchedWindow` guards the admission batcher's bounded window of
//!   packaged-but-unsubmitted jobs. A flush drains the window *under*
//!   the lock but colors the conflict graph and submits the batches
//!   strictly *after* releasing it — pool submission takes `Sched`, so
//!   holding the window across it would nest.
//! * `WireConns` guards the wire server's list of live connection
//!   handles. The acceptor pushes under the lock and releases before
//!   touching the socket; drain-on-shutdown swaps the list out under
//!   the lock and joins the per-connection threads strictly after
//!   releasing it (a joined thread may be blocked acquiring `Sched`
//!   or `TicketSlot`, so joining under `WireConns` would nest by
//!   proxy).
//! * `WireIntern` guards the codec's append-only pool of leaked
//!   `&'static str` values (decoding `ConfigError` needs statics).
//!   Interning is pure string work; no other lock is reachable from
//!   inside it.
//!
//! So any nested acquisition is a bug by definition: either a latent
//! deadlock (two threads nesting in opposite orders) or an accidental
//! extension of a critical section. Two checkers enforce this, one
//! static and one dynamic:
//!
//! * `cfva-lint`'s **L001** rejects nested guard scopes at the token
//!   level, in CI, without running anything;
//! * this module's [`ClassedMutex`] maintains a thread-local stack of
//!   held classes in **debug builds** and panics at the acquisition
//!   site of any second lock — catching at runtime whatever shape the
//!   static scan cannot see (locks passed across functions, guards
//!   stored in temporaries). Release builds compile the bookkeeping
//!   out entirely: `lock()` is a plain `Mutex::lock` plus an enum tag.
//!
//! Poisoning is handled here, once: every lock in this crate guards
//! state that is only ever mutated in small, panic-free critical
//! sections (jobs run *outside* the locks, with panics caught at the
//! job boundary), so a poisoned lock means a bug in this crate itself,
//! not a bad request — unrecoverable by design. The one deliberate
//! exception is [`ClassedMutex::lock_unchecked`], used by drop paths
//! that may run *during an unwind* (ticket abandonment, completer
//! cleanup): those recover from poison instead of panicking, because a
//! panic there would be a double panic and abort the process, and the
//! cleanup they perform is sound against any partially-updated slot. A
//! poisoned lock never leaks past the request that poisoned it —
//! unrelated requests keep resolving (pinned by
//! `poisoned_ticket_slot_never_leaks_to_unrelated_requests` in
//! `tests/chaos.rs`).

use std::sync::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};
use std::time::Duration;

/// The serve-layer lock classes. See the [module docs](self) for what
/// each guards and why they never nest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockClass {
    /// The pool scheduler: every queue, behind one lock.
    Sched,
    /// One ticket's result slot.
    TicketSlot,
    /// The pool's worker `JoinHandle` registry.
    Handles,
    /// The service's per-spec metadata map.
    SpecMeta,
    /// One shard of the canonical result cache.
    CacheShard,
    /// The pool supervisor's per-worker restart ledger.
    Supervisor,
    /// The service's degraded-fallback session map.
    DegradedSessions,
    /// The conflict-aware admission batcher's bounded window.
    SchedWindow,
    /// The wire server's live-connection registry (`cfva-wire`).
    WireConns,
    /// The wire codec's `&'static str` intern pool (`cfva-wire`).
    WireIntern,
}

/// A `Mutex` that knows which [`LockClass`] it belongs to and, in
/// debug builds, enforces the leaf discipline on every acquisition.
#[derive(Debug)]
pub struct ClassedMutex<T> {
    class: LockClass,
    inner: Mutex<T>,
}

impl<T> ClassedMutex<T> {
    /// Wraps `value` in a mutex of the given class.
    pub fn new(class: LockClass, value: T) -> Self {
        ClassedMutex {
            class,
            inner: Mutex::new(value),
        }
    }

    /// Locks, panicking in debug builds if *any* serve lock is already
    /// held by this thread (see the [module docs](self)).
    ///
    /// # Panics
    ///
    /// Panics if the lock is poisoned — see the module docs for why
    /// poisoning is unrecoverable by design here.
    pub fn lock(&self) -> ClassedGuard<'_, T> {
        #[cfg(debug_assertions)]
        let held = order::acquire(self.class);
        // cfva-lint: allow(L002, reason = "the single poison point for every serve lock: critical sections are panic-free, so poison means a cfva-serve bug (see module docs)")
        let inner = self.inner.lock().expect("cfva-serve lock poisoned");
        ClassedGuard {
            inner,
            class: self.class,
            #[cfg(debug_assertions)]
            _held: held,
        }
    }

    /// The class this mutex was registered under.
    pub fn class(&self) -> LockClass {
        self.class
    }

    /// Locks without the debug-order bookkeeping and **recovering from
    /// poison** instead of panicking.
    ///
    /// Exclusively for drop paths that may run *during an unwind*
    /// (ticket abandonment, completer cleanup): a panic there would be
    /// a double panic and abort the process, so this path must never
    /// panic. A poisoned slot mutex here means the panicking side was
    /// interrupted mid-store; the cleanup it protects (marking a slot
    /// abandoned, discarding a result) is sound against any such
    /// partial state.
    pub(crate) fn lock_unchecked(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// The guard of a [`ClassedMutex`]; releases the debug-build held
/// token when dropped.
pub struct ClassedGuard<'a, T> {
    inner: MutexGuard<'a, T>,
    class: LockClass,
    #[cfg(debug_assertions)]
    _held: order::Held,
}

impl<'a, T> ClassedGuard<'a, T> {
    /// Rewraps a raw guard handed back by a condvar, re-registering the
    /// class with the debug checker.
    fn renew(class: LockClass, inner: MutexGuard<'a, T>) -> Self {
        ClassedGuard {
            inner,
            class,
            #[cfg(debug_assertions)]
            _held: order::acquire(class),
        }
    }

    /// Unwraps the raw guard, dropping the debug held token *now*.
    ///
    /// This must be an explicit `drop`: a `ClassedGuard { inner, .. }`
    /// destructure keeps the ignored fields alive to the end of the
    /// enclosing scope, so the token would still be registered while a
    /// condvar wait believes the lock is released — and `renew` on
    /// wake-up would trip the checker on the lock's own class.
    fn into_inner(self) -> MutexGuard<'a, T> {
        #[cfg(debug_assertions)]
        drop(self._held);
        self.inner
    }
}

impl<T> std::fmt::Debug for ClassedGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClassedGuard")
            .field("class", &self.class)
            .finish_non_exhaustive()
    }
}

impl<T> std::ops::Deref for ClassedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for ClassedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// `Condvar::wait` over a classed guard. The held token is released
/// for the duration of the wait — the condvar unlocks the mutex, so
/// the thread genuinely holds nothing — and re-acquired on wake-up.
///
/// # Panics
///
/// Panics if the lock is poisoned (see the [module docs](self)).
pub fn wait<'a, T>(cv: &Condvar, guard: ClassedGuard<'a, T>) -> ClassedGuard<'a, T> {
    let class = guard.class;
    // The wait releases the mutex, so the checker must see the held
    // token released too — before the wait, not at end of scope.
    let inner = guard.into_inner();
    // cfva-lint: allow(L002, reason = "same single poison point as ClassedMutex::lock")
    let inner = cv.wait(inner).expect("cfva-serve lock poisoned");
    ClassedGuard::renew(class, inner)
}

/// `Condvar::wait_timeout` over a classed guard; same held-token
/// handling as [`wait`].
///
/// # Panics
///
/// Panics if the lock is poisoned (see the [module docs](self)).
pub fn wait_timeout<'a, T>(
    cv: &Condvar,
    guard: ClassedGuard<'a, T>,
    timeout: Duration,
) -> (ClassedGuard<'a, T>, WaitTimeoutResult) {
    let class = guard.class;
    let inner = guard.into_inner();
    let (inner, timed_out) = cv
        .wait_timeout(inner, timeout)
        // cfva-lint: allow(L002, reason = "same single poison point as ClassedMutex::lock")
        .expect("cfva-serve lock poisoned");
    (ClassedGuard::renew(class, inner), timed_out)
}

/// The debug-build checker: a thread-local stack of held classes.
/// Compiled out entirely in release builds.
#[cfg(debug_assertions)]
mod order {
    use super::LockClass;
    use std::cell::RefCell;

    thread_local! {
        static HELD: RefCell<Vec<LockClass>> = const { RefCell::new(Vec::new()) };
    }

    /// Proof of a registered acquisition; pops the stack when dropped.
    pub(super) struct Held {
        class: LockClass,
    }

    /// Registers an acquisition, panicking if this thread already
    /// holds any serve lock — the leaf discipline.
    pub(super) fn acquire(class: LockClass) -> Held {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(&outer) = held.last() {
                // cfva-lint: allow(L002, reason = "the dynamic checker's whole job is to panic at the violating acquisition in debug builds")
                panic!(
                    "lock-order violation: acquiring {class:?} while {outer:?} is held — \
                     cfva-serve locks are leaves and must not nest (see cfva_serve::locks)"
                );
            }
            held.push(class);
        });
        Held { class }
    }

    impl Drop for Held {
        fn drop(&mut self) {
            HELD.with(|held| {
                let popped = held.borrow_mut().pop();
                debug_assert_eq!(popped, Some(self.class), "lock release order corrupted");
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_acquisitions_are_fine() {
        let a = ClassedMutex::new(LockClass::Sched, 1u32);
        let b = ClassedMutex::new(LockClass::TicketSlot, 2u32);
        assert_eq!(*a.lock(), 1);
        assert_eq!(*b.lock(), 2);
        assert_eq!(*a.lock(), 1); // re-lock after release is fine too
        assert_eq!(a.class(), LockClass::Sched);
    }

    #[test]
    fn guard_mutation_round_trips() {
        let m = ClassedMutex::new(LockClass::SpecMeta, vec![1u32]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn nested_distinct_classes_panic_in_debug() {
        let outcome = std::panic::catch_unwind(|| {
            let a = ClassedMutex::new(LockClass::Sched, ());
            let b = ClassedMutex::new(LockClass::CacheShard, ());
            let _g1 = a.lock();
            let _g2 = b.lock(); // leaf discipline: any second lock is a bug
        });
        let msg = match outcome {
            Err(payload) => payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default(),
            Ok(()) => String::new(),
        };
        assert!(
            msg.contains("lock-order violation")
                && msg.contains("CacheShard")
                && msg.contains("Sched"),
            "expected a lock-order panic naming both classes, got: {msg}"
        );
    }

    #[cfg(debug_assertions)]
    #[test]
    fn nested_same_class_panics_in_debug() {
        // Same class nested is a self-deadlock on a std Mutex; the
        // checker rejects it before the deadlock.
        let outcome = std::panic::catch_unwind(|| {
            let a = ClassedMutex::new(LockClass::Handles, ());
            let b = ClassedMutex::new(LockClass::Handles, ());
            let _g1 = a.lock();
            let _g2 = b.lock();
        });
        assert!(outcome.is_err());
    }

    #[cfg(debug_assertions)]
    #[test]
    fn wait_timeout_releases_the_held_token_during_the_wait() {
        // After a timed-out wait the guard is held again; dropping it
        // must leave the thread able to take another class — i.e. the
        // renew path keeps the stack balanced.
        let m = ClassedMutex::new(LockClass::Sched, ());
        let cv = Condvar::new();
        let g = m.lock();
        let (g, timed_out) = wait_timeout(&cv, g, Duration::from_millis(1));
        assert!(timed_out.timed_out());
        drop(g);
        let other = ClassedMutex::new(LockClass::TicketSlot, ());
        let _g = other.lock(); // would panic if Sched were still registered
    }

    #[test]
    fn threads_track_held_locks_independently() {
        // The checker is per-thread: two threads may each hold one
        // lock concurrently without tripping it.
        let a = std::sync::Arc::new(ClassedMutex::new(LockClass::Sched, 0u32));
        let b = std::sync::Arc::new(ClassedMutex::new(LockClass::TicketSlot, 0u32));
        let (a2, b2) = (std::sync::Arc::clone(&a), std::sync::Arc::clone(&b));
        let t = std::thread::spawn(move || {
            for _ in 0..100 {
                *a2.lock() += 1;
            }
            *b2.lock() += 1;
        });
        for _ in 0..100 {
            *b.lock() += 1;
        }
        t.join().expect("checker thread must not panic");
        assert_eq!(*a.lock(), 100);
        assert_eq!(*b.lock(), 101);
    }
}
