//! The serving front end: a [`Service`] handle dispatching typed
//! [`Request`]s onto the work-stealing session pool.
//!
//! # Session affinity
//!
//! Each pool worker owns a cache of long-lived [`BatchRunner`]
//! sessions **keyed by canonical spec string**. `submit()` hashes the
//! request's spec to pick a preferred worker and queues onto that
//! worker's local queue, so repeated requests against the same map hit
//! a warm session (planner, memory system, plan/stats scratch — no
//! rebuild, no allocation). Work stealing keeps affinity a *hint*, not
//! a bottleneck: when the preferred worker is busy, an idle peer
//! steals the request and serves it from its own cache (building the
//! session on first touch).
//!
//! # Backpressure and shutdown
//!
//! The admission queue is bounded ([`ServiceConfig::queue_capacity`]).
//! A full queue rejects with [`ServeError::Overloaded`] — callers get
//! a typed signal to back off instead of unbounded queueing.
//! [`Service::shutdown`] stops admission ([`ServeError::ShuttingDown`])
//! and **drains**: every accepted request completes and resolves its
//! ticket before the workers exit.
//!
//! # Determinism
//!
//! Responses are pure functions of the request (plus `seed` where the
//! request samples): a pooled measurement is bit-identical to the same
//! call on a fresh serial [`BatchRunner`], whichever worker serves it
//! and however often the session was reused before —
//! `tests/service_equivalence.rs` pins this with a proptest.
//!
//! # Result cache
//!
//! Determinism makes responses memoizable, and stride equivalence
//! ([`cfva_core::StrideClass`]) makes the memo key *smaller than the
//! request*: `submit` consults a sharded, bounded LRU cache keyed on
//! the canonical spec string plus the class-reduced request **before**
//! touching the pool. A hit resolves the ticket immediately — the O(1)
//! serve path: no queueing, no session, no simulation. Misses populate
//! the cache when the worker completes (successful responses only).
//! Bypass per request with [`Service::submit_uncached`], or disable
//! service-wide with [`ServiceConfig::cache_capacity`]` = 0`;
//! [`Service::stats`] reports hit/miss/eviction/bypass counters. The
//! cache-on ≡ cache-off bit-identity is pinned by proptest in
//! `tests/service_cache.rs`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use cfva_core::mapping::{MapSpec, ModuleMap, Registry};
use cfva_core::plan::Strategy;
use cfva_core::Stride;
use cfva_core::StrideClass;
use cfva_core::VectorSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::api::{Estimator, FamilyPoint, Request, Response, ServeError, ServeResult};
use crate::cache::{CacheKey, CacheStats, RequestKey, ResultCache};
use crate::locks::{ClassedMutex, LockClass};
use crate::pool::{Pool, SubmitError, Ticket};
use crate::runner::BatchRunner;
use crate::workload::StrideSampler;

/// A completion handle for one submitted request.
pub type ServeTicket = Ticket<ServeResult>;

/// Service sizing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Pool workers (each owning its session cache). Defaults to the
    /// machine's available parallelism.
    pub workers: usize,
    /// Admission-queue bound: requests waiting beyond this are
    /// rejected with [`ServeError::Overloaded`]. Defaults to
    /// `16 × workers`.
    pub queue_capacity: usize,
    /// Result-cache bound in entries ([module docs](self) under
    /// "Result cache"). `0` disables the cache entirely. Defaults to
    /// [`ServiceConfig::DEFAULT_CACHE_CAPACITY`].
    pub cache_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ServiceConfig::with_workers(workers)
    }
}

impl ServiceConfig {
    /// Default result-cache bound: generous for repeated-request
    /// serving, small next to one cached `AccessStats`' arrival vector.
    pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

    /// A config with `workers` workers and the default queue bound for
    /// that worker count.
    pub fn with_workers(workers: usize) -> Self {
        ServiceConfig {
            workers,
            queue_capacity: 16 * workers,
            cache_capacity: Self::DEFAULT_CACHE_CAPACITY,
        }
    }

    /// Replaces the admission-queue bound.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Replaces the result-cache bound; `0` disables the cache.
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }
}

/// A point-in-time snapshot of service load and cache effectiveness —
/// [`Service::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests waiting for a worker (admitted, not yet picked up).
    pub queue_depth: usize,
    /// Requests admitted and not yet resolved (queued **or**
    /// executing); cache hits never count here.
    pub in_flight: usize,
    /// Cache counters, or `None` when the cache is disabled
    /// (`cache_capacity == 0`).
    pub cache: Option<CacheStats>,
}

/// One worker's session cache: canonical spec string → warm session.
#[derive(Debug, Default)]
struct SpecSessions {
    sessions: HashMap<String, BatchRunner>,
}

impl SpecSessions {
    /// The worker-side session lookup; builds (and caches) the session
    /// on first touch. `key` is the spec's canonical string, computed
    /// **once at submission** — the hot path allocates nothing (the
    /// `Entry` API would re-stringify the spec per request). Build
    /// failures are not cached — a transient failure (e.g. a matrix
    /// file appearing later) may succeed on retry.
    fn get_or_create(&mut self, key: &str, spec: &MapSpec) -> Result<&mut BatchRunner, ServeError> {
        if !self.sessions.contains_key(key) {
            let session = BatchRunner::from_spec(spec).map_err(ServeError::Spec)?;
            self.sessions.insert(key.to_string(), session);
        }
        // cfva-lint: allow(L002, reason = "contains_key two lines up guarantees the entry; the double lookup (vs the Entry API) avoids a per-request key allocation on the hot path")
        Ok(self.sessions.get_mut(key).expect("just ensured"))
    }
}

/// Decrements the in-flight gauge when the job finishes — held inside
/// the worker closure so a panicking request still decrements.
struct InFlightGuard(Arc<AtomicUsize>);

impl Drop for InFlightGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Plan/measure-as-a-service over the work-stealing session pool. See
/// the [module docs](self).
///
/// # Examples
///
/// ```
/// use cfva_serve::api::{Request, Response};
/// use cfva_serve::service::{Service, ServiceConfig};
/// use cfva_core::plan::Strategy;
/// use cfva_core::VectorSpec;
///
/// let service = Service::new(ServiceConfig::with_workers(2));
/// let tickets: Vec<_> = (0..4u64)
///     .map(|i| {
///         service
///             .submit(Request::Measure {
///                 spec: "xor-matched:t=3,s=3".into(),
///                 vec: VectorSpec::new(16 + i, 12, 64).unwrap(),
///                 strategy: Strategy::Auto,
///             })
///             .expect("queue has room")
///     })
///     .collect();
/// for ticket in tickets {
///     assert!(matches!(ticket.wait(), Ok(Response::Measured(Some(_)))));
/// }
/// service.shutdown(); // drains in-flight work, then joins the workers
/// ```
#[derive(Debug)]
pub struct Service {
    pool: Pool<SpecSessions>,
    /// The memoized result cache; `None` when disabled.
    cache: Option<Arc<ResultCache>>,
    /// Canonical spec string → the map's `address_bits_used` (the one
    /// map-side input of the stride-class reduction), or `None` for a
    /// spec that parses but does not build — those have no sound cache
    /// key and bypass the cache. Populated once per spec.
    spec_used_bits: ClassedMutex<HashMap<String, Option<u32>>>,
    /// Admitted-but-unresolved gauge (queued or executing).
    in_flight: Arc<AtomicUsize>,
}

impl Service {
    /// Spawns the worker pool. Workers start with empty session
    /// caches; sessions are built on first request per spec.
    ///
    /// # Panics
    ///
    /// Panics if `config.workers == 0` or `config.queue_capacity == 0`.
    pub fn new(config: ServiceConfig) -> Self {
        Service {
            pool: Pool::new(config.workers, config.queue_capacity, |_| {
                SpecSessions::default()
            }),
            cache: (config.cache_capacity > 0)
                .then(|| Arc::new(ResultCache::new(config.cache_capacity))),
            spec_used_bits: ClassedMutex::new(LockClass::SpecMeta, HashMap::new()),
            in_flight: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// The worker count.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// The admission-queue bound.
    pub fn queue_capacity(&self) -> usize {
        self.pool.capacity()
    }

    /// Requests currently waiting for a worker.
    pub fn queue_depth(&self) -> usize {
        self.pool.queue_depth()
    }

    /// A snapshot of service load and cache counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            queue_depth: self.pool.queue_depth(),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            cache: self.cache.as_ref().map(|c| c.stats()),
        }
    }

    /// Validates and enqueues `request`, returning the ticket its
    /// response will resolve through. When the result cache holds this
    /// request's response already, the ticket comes back **resolved**
    /// — no pool round trip (see the [module docs](self)).
    ///
    /// Synchronous rejections (the request was **not** queued):
    ///
    /// * [`ServeError::Spec`] — the spec string does not parse;
    /// * [`ServeError::Request`] — invalid sweep/estimator parameters
    ///   (even `sigma`, zero `per_family`, …);
    /// * [`ServeError::Overloaded`] — admission queue full;
    /// * [`ServeError::ShuttingDown`] — [`shutdown`](Self::shutdown)
    ///   has begun.
    ///
    /// Session-side failures (a spec that parses but cannot build)
    /// resolve through the ticket as `Err`.
    #[must_use = "the ServeTicket inside is the only handle to the response"]
    pub fn submit(&self, request: Request) -> Result<ServeTicket, ServeError> {
        self.submit_inner(request, true)
    }

    /// [`submit`](Self::submit) without consulting or populating the
    /// result cache — the per-request bypass knob, for callers that
    /// want a fresh pooled execution (timing runs, cache-equivalence
    /// checks). Counted under [`CacheStats::bypasses`].
    #[must_use = "the ServeTicket inside is the only handle to the response"]
    pub fn submit_uncached(&self, request: Request) -> Result<ServeTicket, ServeError> {
        self.submit_inner(request, false)
    }

    fn submit_inner(&self, request: Request, use_cache: bool) -> Result<ServeTicket, ServeError> {
        let parsed: MapSpec = request.spec().parse().map_err(ServeError::Spec)?;
        validate(&request)?;
        // Canonicalize once: the canonical string keys the affinity
        // router, the worker's session table and the result cache, so
        // equivalent spellings share a worker, a session and a cache
        // entry.
        let spec = parsed.canonical();
        let canon = spec.to_string();

        let key = match &self.cache {
            Some(cache) if use_cache => match self.cache_key(&canon, &request) {
                Some(key) => {
                    if let Some(response) = cache.get(&key) {
                        return Ok(Ticket::ready(Ok(response)));
                    }
                    Some(key)
                }
                None => {
                    cache.note_bypass();
                    None
                }
            },
            Some(cache) => {
                cache.note_bypass();
                None
            }
            None => None,
        };
        let populate = match (&self.cache, key) {
            (Some(cache), Some(key)) => Some((Arc::clone(cache), key)),
            _ => None,
        };

        let worker = route(&canon, self.pool.workers());
        let in_flight = Arc::clone(&self.in_flight);
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        let submitted = self
            .pool
            .try_submit_to(worker, move |sessions: &mut SpecSessions| {
                let _guard = InFlightGuard(in_flight);
                let result = execute(sessions, &canon, &spec, &request);
                if let (Some((cache, key)), Ok(response)) = (&populate, &result) {
                    cache.insert(key.clone(), response.clone());
                }
                result
            });
        if submitted.is_err() {
            // The job never ran; its guard never existed.
            self.in_flight.fetch_sub(1, Ordering::Relaxed);
        }
        submitted.map_err(|e| match e {
            SubmitError::QueueFull {
                queue_depth,
                capacity,
            } => ServeError::Overloaded {
                queue_depth,
                capacity,
            },
            SubmitError::ShuttingDown => ServeError::ShuttingDown,
        })
    }

    /// The cache key of `request` under the canonical spec `canon`, or
    /// `None` when no sound key exists (the spec does not build, so
    /// there is no map to class-reduce measurements under).
    fn cache_key(&self, canon: &str, request: &Request) -> Option<CacheKey> {
        let req = match request {
            Request::Measure { vec, strategy, .. } => RequestKey::Measure {
                class: StrideClass::reduce_with_used(self.used_bits(canon)?, vec),
                strategy: *strategy,
            },
            Request::MeasureBatch { accesses, .. } => {
                let used = self.used_bits(canon)?;
                RequestKey::Batch {
                    items: accesses
                        .iter()
                        .map(|(vec, strategy)| {
                            (StrideClass::reduce_with_used(used, vec), *strategy)
                        })
                        .collect(),
                }
            }
            Request::FamilySweep {
                len, max_x, sigma, ..
            } => RequestKey::FamilySweep {
                len: *len,
                max_x: *max_x,
                sigma: *sigma,
            },
            Request::Efficiency {
                strategy,
                len,
                estimator,
                seed,
                ..
            } => RequestKey::Efficiency {
                strategy: *strategy,
                len: *len,
                estimator: *estimator,
                seed: *seed,
            },
        };
        Some(CacheKey {
            spec: canon.to_string(),
            req,
        })
    }

    /// `address_bits_used` of the canonical spec's map — the one
    /// map-side input the stride-class reduction needs — computed by a
    /// one-time registry build per spec and memoized (including the
    /// negative result for specs that parse but do not build).
    fn used_bits(&self, canon: &str) -> Option<u32> {
        let mut meta = self.spec_used_bits.lock();
        if let Some(&used) = meta.get(canon) {
            return used;
        }
        let used = canon
            .parse::<MapSpec>()
            .ok()
            .and_then(|spec| Registry::builtin().build(&spec).ok())
            .map(|map| map.address_bits_used());
        meta.insert(canon.to_string(), used);
        used
    }

    /// Graceful shutdown: stops admission (further [`submit`]s fail
    /// with [`ServeError::ShuttingDown`]), drains every queued and
    /// in-flight request (their tickets resolve), then joins the
    /// workers. Dropping the service does the same. Takes `&self` so a
    /// shared service (e.g. behind an `Arc` under a network front end)
    /// can be shut down while handlers still hold it.
    ///
    /// [`submit`]: Self::submit
    pub fn shutdown(&self) {
        self.pool.shutdown();
    }
}

/// FNV-1a over the canonical spec string — the affinity router. Plain
/// and dependency-free; all that matters is a stable spec → worker
/// assignment within one service lifetime.
fn route(key: &str, workers: usize) -> usize {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in key.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash % workers as u64) as usize
}

/// Submit-side parameter validation: everything that can be rejected
/// without a session is rejected before queueing.
fn validate(request: &Request) -> Result<(), ServeError> {
    match request {
        Request::Measure { .. } | Request::MeasureBatch { .. } => Ok(()),
        Request::FamilySweep {
            sigma, max_x, len, ..
        } => {
            // One probe constructs the sweep's largest access: rejects
            // zero/even sigma, an overflowing sigma·2^max_x, len == 0
            // and an address stream leaving u64 — synchronously, per
            // the contract that `Request` errors never reach the
            // ticket.
            let stride = Stride::from_parts(*sigma, *max_x).map_err(ServeError::Request)?;
            VectorSpec::with_stride(16u64.into(), stride, *len)
                .map(|_| ())
                .map_err(ServeError::Request)
        }
        Request::Efficiency { estimator, len, .. } => {
            // Probe the estimator's worst-case access up front, so an
            // out-of-domain parameter is a typed synchronous rejection
            // — never a worker-side panic re-raised at ticket.wait()
            // (the sampler asserts `max_x ≤ 40`, and an oversized
            // `sigma · 2^max_x · len` would trip construction expects
            // deep inside the estimator loops).
            let (max_x, max_sigma) = match estimator {
                Estimator::MonteCarlo {
                    samples,
                    max_x,
                    max_sigma,
                } => {
                    if *samples == 0 {
                        return Err(ServeError::Request(cfva_core::ConfigError::OutOfRange {
                            what: "samples",
                            value: 0,
                            constraint: "samples must be at least 1",
                        }));
                    }
                    if *max_sigma == 0 {
                        return Err(ServeError::Request(cfva_core::ConfigError::OutOfRange {
                            what: "max_sigma",
                            value: 0,
                            constraint: "max_sigma must be at least 1",
                        }));
                    }
                    (*max_x, *max_sigma)
                }
                Estimator::Stratified { max_x, per_family } => {
                    if *per_family == 0 {
                        return Err(ServeError::Request(cfva_core::ConfigError::OutOfRange {
                            what: "per_family",
                            value: 0,
                            constraint: "per_family must be at least 1",
                        }));
                    }
                    // The stratified loop draws `sigma ∈ {1, 3, …, 15}`.
                    (*max_x, 15)
                }
            };
            if max_x > 40 {
                return Err(ServeError::Request(cfva_core::ConfigError::OutOfRange {
                    what: "max_x",
                    value: u64::from(max_x),
                    constraint: "max_x must be at most 40",
                }));
            }
            // The largest odd part either estimator can draw.
            let worst_odd = max_sigma - u64::from(max_sigma % 2 == 0);
            let worst_sigma = i64::try_from(worst_odd).map_err(|_| {
                ServeError::Request(cfva_core::ConfigError::OutOfRange {
                    what: "max_sigma",
                    value: max_sigma,
                    constraint: "max_sigma must fit in i64",
                })
            })?;
            let worst_stride =
                Stride::from_parts(worst_sigma, max_x).map_err(ServeError::Request)?;
            // Both estimators draw bases below 2^24; the largest
            // base/stride/len combination must stay addressable (this
            // also rejects `len == 0`).
            VectorSpec::with_stride(((1u64 << 24) - 1).into(), worst_stride, *len)
                .map(|_| ())
                .map_err(ServeError::Request)
        }
    }
}

/// The worker-side request dispatch, against the worker's session
/// cache. `canon` is the spec's canonical string, stringified once at
/// submission.
fn execute(
    sessions: &mut SpecSessions,
    canon: &str,
    spec: &MapSpec,
    request: &Request,
) -> ServeResult {
    let session = sessions.get_or_create(canon, spec)?;
    match request {
        Request::Measure { vec, strategy, .. } => {
            Ok(Response::Measured(session.measure_owned(vec, *strategy)))
        }
        Request::MeasureBatch { accesses, .. } => {
            Ok(Response::Batch(session.measure_batch(accesses)))
        }
        Request::FamilySweep {
            len, max_x, sigma, ..
        } => family_sweep(session, *len, *max_x, *sigma),
        Request::Efficiency {
            strategy,
            len,
            estimator,
            seed,
            ..
        } => {
            let mut rng = StdRng::seed_from_u64(*seed);
            let eta = match estimator {
                Estimator::MonteCarlo {
                    samples,
                    max_x,
                    max_sigma,
                } => {
                    let sampler = StrideSampler::new(*max_x, *max_sigma);
                    session.simulated_efficiency(*strategy, *len, *samples, &sampler, &mut rng)
                }
                Estimator::Stratified { max_x, per_family } => {
                    session.stratified_efficiency(*strategy, *len, *max_x, *per_family, &mut rng)
                }
            };
            Ok(Response::Efficiency(eta))
        }
    }
}

fn family_sweep(session: &mut BatchRunner, len: u64, max_x: u32, sigma: i64) -> ServeResult {
    let mut rows = Vec::with_capacity(max_x as usize + 1);
    for x in 0..=max_x {
        let stride = Stride::from_parts(sigma, x).map_err(ServeError::Request)?;
        let vec =
            VectorSpec::with_stride(16u64.into(), stride, len).map_err(ServeError::Request)?;
        let stats = session
            .measure_owned(&vec, Strategy::Auto)
            // cfva-lint: allow(L002, reason = "Strategy::Auto falls back to naive order, which plans for every valid spec/vector pair — see plan::auto")
            .expect("auto always plans");
        rows.push(FamilyPoint {
            x,
            stride: stride.get(),
            latency: stats.latency,
            conflicts: stats.conflicts,
            stall_cycles: stats.stall_cycles,
            cycles_per_element: session.cycles_per_element(&stats),
        });
    }
    Ok(Response::FamilySweep(rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_stable_and_in_range() {
        for workers in [1, 2, 3, 8] {
            for key in ["xor-matched:t=3,s=4", "skewed:m=3,d=1", "interleaved:m=3"] {
                let w = route(key, workers);
                assert!(w < workers);
                assert_eq!(w, route(key, workers), "routing must be deterministic");
            }
        }
    }

    #[test]
    fn bad_spec_rejected_at_submit() {
        let service = Service::new(ServiceConfig::with_workers(1));
        let err = service
            .submit(Request::Measure {
                spec: "skewed:m".into(),
                vec: VectorSpec::new(0, 1, 16).unwrap(),
                strategy: Strategy::Auto,
            })
            .unwrap_err();
        assert!(matches!(err, ServeError::Spec(_)), "{err}");
        service.shutdown();
    }

    #[test]
    fn invalid_sweep_parameters_rejected_at_submit() {
        let service = Service::new(ServiceConfig::with_workers(1));
        // Even sigma, zero length, and an overflowing address stream
        // are all synchronous Request rejections — none may travel to
        // the worker and come back through the ticket.
        for (sigma, len, max_x) in [(4i64, 16u64, 3u32), (1, 0, 3), (1, 1 << 40, 40)] {
            let err = service
                .submit(Request::FamilySweep {
                    spec: "interleaved:m=3".into(),
                    len,
                    max_x,
                    sigma,
                })
                .map(|_| ())
                .unwrap_err();
            assert!(
                matches!(err, ServeError::Request(_)),
                "sigma {sigma} len {len} max_x {max_x}: {err}"
            );
        }
        service.shutdown();
    }

    #[test]
    fn out_of_domain_estimators_rejected_at_submit_not_worker_panic() {
        let service = Service::new(ServiceConfig::with_workers(1));
        let cases = [
            // Sampler cap: StdRng stride families top out at 40.
            Estimator::MonteCarlo {
                samples: 1,
                max_x: 41,
                max_sigma: 1,
            },
            // sigma · 2^max_x overflows i64.
            Estimator::Stratified {
                max_x: 63,
                per_family: 1,
            },
            // Stride fits, but base + stride·(len−1) leaves u64.
            Estimator::Stratified {
                max_x: 39,
                per_family: 1,
            },
        ];
        for (i, estimator) in cases.into_iter().enumerate() {
            let err = service
                .submit(Request::Efficiency {
                    spec: "interleaved:m=3".into(),
                    strategy: Strategy::Auto,
                    len: if i == 2 { 1 << 26 } else { 64 },
                    estimator,
                    seed: 0,
                })
                .map(|_| ())
                .unwrap_err();
            assert!(matches!(err, ServeError::Request(_)), "case {i}: {err}");
        }
        // The in-domain boundary still goes through.
        let ticket = service
            .submit(Request::Efficiency {
                spec: "interleaved:m=3".into(),
                strategy: Strategy::Auto,
                len: 64,
                estimator: Estimator::MonteCarlo {
                    samples: 4,
                    max_x: 40,
                    max_sigma: 9,
                },
                seed: 1,
            })
            .expect("in-domain estimator is accepted");
        assert!(matches!(ticket.wait(), Ok(Response::Efficiency(_))));
        service.shutdown();
    }

    #[test]
    fn unbuildable_spec_resolves_through_ticket() {
        // `custom-gf2:rows=0b11|0b11` parses (valid grammar) but is
        // rank deficient: the failure belongs to the session build on
        // the worker, so it must come back through the ticket.
        let service = Service::new(ServiceConfig::with_workers(1));
        let ticket = service
            .submit(Request::Measure {
                spec: "custom-gf2:rows=0b11|0b11".into(),
                vec: VectorSpec::new(0, 1, 16).unwrap(),
                strategy: Strategy::Auto,
            })
            .expect("grammar is valid, submission succeeds");
        match ticket.wait() {
            Err(ServeError::Spec(e)) => {
                assert_eq!(e, cfva_core::ConfigError::SingularMatrix)
            }
            other => panic!("expected a spec build error, got {other:?}"),
        }
        service.shutdown();
    }
}
