//! The serving front end: a [`Service`] handle dispatching typed
//! [`Request`]s onto the work-stealing session pool.
//!
//! # Session affinity
//!
//! Each pool worker owns a cache of long-lived [`BatchRunner`]
//! sessions **keyed by canonical spec string**. `submit()` hashes the
//! request's spec to pick a preferred worker and queues onto that
//! worker's local queue, so repeated requests against the same map hit
//! a warm session (planner, memory system, plan/stats scratch — no
//! rebuild, no allocation). Work stealing keeps affinity a *hint*, not
//! a bottleneck: when the preferred worker is busy, an idle peer
//! steals the request and serves it from its own cache (building the
//! session on first touch).
//!
//! # Backpressure and shutdown
//!
//! The admission queue is bounded ([`ServiceConfig::queue_capacity`]).
//! A full queue rejects with [`ServeError::Overloaded`] — callers get
//! a typed signal to back off instead of unbounded queueing.
//! [`Service::shutdown`] stops admission ([`ServeError::ShuttingDown`])
//! and **drains**: every accepted request completes and resolves its
//! ticket before the workers exit.
//!
//! # Determinism
//!
//! Responses are pure functions of the request (plus `seed` where the
//! request samples): a pooled measurement is bit-identical to the same
//! call on a fresh serial [`BatchRunner`], whichever worker serves it
//! and however often the session was reused before —
//! `tests/service_equivalence.rs` pins this with a proptest.
//!
//! # Result cache
//!
//! Determinism makes responses memoizable, and stride equivalence
//! ([`cfva_core::StrideClass`]) makes the memo key *smaller than the
//! request*: `submit` consults a sharded, bounded LRU cache keyed on
//! the canonical spec string plus the class-reduced request **before**
//! touching the pool. A hit resolves the ticket immediately — the O(1)
//! serve path: no queueing, no session, no simulation. Misses populate
//! the cache when the worker completes (successful responses only).
//! Bypass per request with [`Service::submit_uncached`], or disable
//! service-wide with [`ServiceConfig::cache_capacity`]` = 0`;
//! [`Service::stats`] reports hit/miss/eviction/bypass counters. The
//! cache-on ≡ cache-off bit-identity is pinned by proptest in
//! `tests/service_cache.rs`.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cfva_core::equiv::occupancy_signature;
use cfva_core::mapping::{MapSpec, ModuleMap, Registry};
use cfva_core::plan::{AccessPlan, Strategy};
use cfva_core::Stride;
use cfva_core::StrideClass;
use cfva_core::VectorSpec;
use cfva_memsim::multi::run_multi;
use cfva_memsim::{AccessStats, AnalyticEstimate, IssuePolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::api::{
    Estimator, FamilyPoint, MultiStreamOutcome, Request, Response, SchedulePlan, ServeError,
    ServeResult, StreamSummary,
};
use crate::cache::{CacheKey, CacheStats, RequestKey, ResultCache};
use crate::fault::{FaultPlan, SubmitFault};
use crate::locks::{ClassedMutex, LockClass};
use crate::pool::{package, panic_message, Pool, PoolOptions, SubmitError, Ticket};
use crate::runner::BatchRunner;
use crate::sched::{plan_waves, score_milli, SchedulerConfig, SchedulerShared, WindowEntry};
use crate::workload::StrideSampler;

/// A completion handle for one submitted request, deadline-aware: a
/// ticket submitted with a budget ([`Service::submit_with_budget`] or
/// [`ServiceConfig::default_budget`]) resolves with
/// [`ServeError::DeadlineExceeded`] instead of blocking past its
/// deadline — [`wait`](ServeTicket::wait) never outlives the budget.
#[must_use = "a ServeTicket is the only handle to the response; drop it and the response is lost"]
#[derive(Debug)]
pub struct ServeTicket {
    inner: Ticket<ServeResult>,
    /// The absolute deadline, when submitted with a budget.
    deadline: Option<Instant>,
    /// The budget itself (for the typed error).
    budget: Option<Duration>,
    /// The service's deadline-exceeded counter, bumped on caller-side
    /// expiry; `None` for tickets born resolved.
    counters: Option<Arc<ServeCounters>>,
    /// The admission batcher this ticket's request may be parked in;
    /// `poll`/`wait` flush it before blocking, so a windowed request
    /// can never deadlock its own caller. `None` on the direct path.
    scheduler: Option<Arc<SchedulerShared>>,
    /// Set once the deadline error has been delivered through `poll`.
    expired: bool,
}

impl ServeTicket {
    /// A ticket born resolved — cache hits and submit-side degraded
    /// responses.
    fn now(result: ServeResult) -> Self {
        ServeTicket {
            inner: Ticket::ready(result),
            deadline: None,
            budget: None,
            counters: None,
            scheduler: None,
            expired: false,
        }
    }

    fn pending(
        inner: Ticket<ServeResult>,
        budget: Option<Duration>,
        deadline: Option<Instant>,
        counters: Arc<ServeCounters>,
        scheduler: Option<Arc<SchedulerShared>>,
    ) -> Self {
        ServeTicket {
            inner,
            deadline,
            budget,
            counters: Some(counters),
            scheduler,
            expired: false,
        }
    }

    /// Flushes the admission window this request may be parked in —
    /// every blocking or polling entry point calls this first, so a
    /// windowed ticket always makes progress.
    fn unpark(&self) {
        if let Some(scheduler) = &self.scheduler {
            if !self.inner.is_ready() {
                scheduler.flush();
            }
        }
    }

    /// Whether the response (or its typed error) is ready to take.
    pub fn is_ready(&self) -> bool {
        self.inner.is_ready()
    }

    /// Non-blocking take — `Some` once resolved, and at most once.
    /// Past the deadline a still-pending ticket resolves to
    /// [`ServeError::DeadlineExceeded`] (also delivered at most once).
    ///
    /// # Panics
    ///
    /// Re-raises the request's panic if it exhausted its retries in a
    /// service configured with `max_retries` handling disabled —
    /// normally requests resolve to typed errors instead.
    pub fn poll(&mut self) -> Option<ServeResult> {
        self.unpark();
        if let Some(result) = self.inner.poll() {
            return Some(result);
        }
        match self.deadline {
            Some(deadline) if !self.expired && Instant::now() >= deadline => {
                self.expired = true;
                if let Some(counters) = &self.counters {
                    counters.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                }
                Some(Err(ServeError::DeadlineExceeded {
                    budget: self.budget.unwrap_or_default(),
                }))
            }
            _ => None,
        }
    }

    /// Blocks until the response is ready — or, for a ticket with a
    /// budget, until the deadline, resolving
    /// [`ServeError::DeadlineExceeded`] instead of blocking forever.
    /// The abandoned in-flight result is discarded when it eventually
    /// completes (see [`Ticket`]'s abandonment semantics).
    ///
    /// # Panics
    ///
    /// Same panic contract as [`poll`](ServeTicket::poll), plus the
    /// double-take contract of [`Ticket::wait`].
    pub fn wait(self) -> ServeResult {
        self.unpark();
        let Some(deadline) = self.deadline else {
            return self.inner.wait();
        };
        let budget = self.budget.unwrap_or_default();
        let counters = self.counters.clone();
        let now = Instant::now();
        let outcome = if now >= deadline {
            Err(self.inner)
        } else {
            self.inner.wait_timeout(deadline - now)
        };
        match outcome {
            Ok(result) => result,
            Err(abandoned) => {
                drop(abandoned); // marks the slot abandoned; the result is discarded on completion
                if let Some(counters) = &counters {
                    counters.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                }
                Err(ServeError::DeadlineExceeded { budget })
            }
        }
    }

    /// Like [`wait`](ServeTicket::wait) but gives up after `timeout`,
    /// handing the still-pending ticket back as `Err`. A ticket whose
    /// *deadline* (not the timeout) elapsed resolves `Ok` with
    /// [`ServeError::DeadlineExceeded`] — the deadline is a resolution,
    /// the timeout is not.
    #[must_use = "on timeout the still-pending ticket comes back in the Err; dropping it loses the response"]
    pub fn wait_timeout(self, timeout: Duration) -> Result<ServeResult, ServeTicket> {
        self.unpark();
        let now = Instant::now();
        let capped = match self.deadline {
            Some(deadline) => timeout.min(deadline.saturating_duration_since(now)),
            None => timeout,
        };
        match self.inner.wait_timeout(capped) {
            Ok(result) => Ok(result),
            Err(inner) => {
                let revived = ServeTicket { inner, ..self };
                match revived.deadline {
                    Some(deadline) if Instant::now() >= deadline => {
                        let budget = revived.budget.unwrap_or_default();
                        if let Some(counters) = &revived.counters {
                            counters.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                        }
                        drop(revived); // abandon: the late result is discarded
                        Ok(Err(ServeError::DeadlineExceeded { budget }))
                    }
                    _ => Err(revived),
                }
            }
        }
    }
}

/// Service sizing and robustness knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Pool workers (each owning its session cache). Defaults to the
    /// machine's available parallelism.
    pub workers: usize,
    /// Admission-queue bound: requests waiting beyond this are
    /// rejected with [`ServeError::Overloaded`]. Defaults to
    /// `16 × workers`.
    pub queue_capacity: usize,
    /// Result-cache bound in entries ([module docs](self) under
    /// "Result cache"). `0` disables the cache entirely. Defaults to
    /// [`ServiceConfig::DEFAULT_CACHE_CAPACITY`].
    pub cache_capacity: usize,
    /// Worker-side execution retries after a panicking attempt
    /// (requests are idempotent — responses are pure functions of the
    /// request — so re-execution is always sound). Defaults to
    /// [`ServiceConfig::DEFAULT_MAX_RETRIES`]; `0` disables retry.
    pub max_retries: u32,
    /// Supervisor restart budget per pool worker
    /// ([`PoolOptions::max_restarts`]). Defaults to
    /// [`PoolOptions::DEFAULT_MAX_RESTARTS`].
    pub max_worker_restarts: u32,
    /// When `true`, `Measure`/`FamilySweep` requests degrade to the
    /// O(1) analytic estimate — wrapped in [`Response::Degraded`] —
    /// instead of failing with [`ServeError::Overloaded`] (full queue)
    /// or [`ServeError::WorkerPanicked`] (retries exhausted). Defaults
    /// to `false`: degradation changes response types, so callers opt
    /// in.
    pub degraded_fallback: bool,
    /// A deadline budget applied to every submission that does not
    /// carry its own ([`Service::submit_with_budget`]). Defaults to
    /// `None` — no deadline.
    pub default_budget: Option<Duration>,
    /// The chaos plan injected into this service and its pool
    /// ([`crate::fault`]). Defaults to `None`; the hooks cost nothing
    /// when absent.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// The conflict-aware admission batcher ([`crate::sched`]).
    /// Defaults to `None` — plain FIFO admission. Responses are
    /// bit-identical either way; only scheduling changes.
    pub scheduler: Option<SchedulerConfig>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ServiceConfig::with_workers(workers)
    }
}

impl ServiceConfig {
    /// Default result-cache bound: generous for repeated-request
    /// serving, small next to one cached `AccessStats`' arrival vector.
    pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

    /// Default worker-side retry budget per request.
    pub const DEFAULT_MAX_RETRIES: u32 = 2;

    /// A config with `workers` workers and the default queue bound for
    /// that worker count.
    pub fn with_workers(workers: usize) -> Self {
        ServiceConfig {
            workers,
            queue_capacity: 16 * workers,
            cache_capacity: Self::DEFAULT_CACHE_CAPACITY,
            max_retries: Self::DEFAULT_MAX_RETRIES,
            max_worker_restarts: PoolOptions::DEFAULT_MAX_RESTARTS,
            degraded_fallback: false,
            default_budget: None,
            fault_plan: None,
            scheduler: None,
        }
    }

    /// Replaces the admission-queue bound.
    #[must_use]
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Replaces the result-cache bound; `0` disables the cache.
    #[must_use]
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Replaces the worker-side retry budget; `0` disables retry.
    #[must_use]
    pub fn max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Replaces the supervisor's per-worker restart budget.
    #[must_use]
    pub fn max_worker_restarts(mut self, budget: u32) -> Self {
        self.max_worker_restarts = budget;
        self
    }

    /// Enables (or disables) the degraded analytic fallback.
    #[must_use]
    pub fn degraded_fallback(mut self, enabled: bool) -> Self {
        self.degraded_fallback = enabled;
        self
    }

    /// Applies `budget` to every submission without an explicit one.
    #[must_use]
    pub fn default_budget(mut self, budget: Duration) -> Self {
        self.default_budget = Some(budget);
        self
    }

    /// Installs a fault plan (chaos injection; see [`crate::fault`]).
    #[must_use]
    pub fn fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Enables the conflict-aware admission batcher
    /// ([`crate::sched`]).
    #[must_use]
    pub fn scheduler(mut self, config: SchedulerConfig) -> Self {
        self.scheduler = Some(config);
        self
    }
}

/// A point-in-time snapshot of service load, cache effectiveness and
/// robustness counters — [`Service::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests waiting for a worker (admitted, not yet picked up).
    pub queue_depth: usize,
    /// Requests admitted and not yet resolved (queued **or**
    /// executing); cache hits never count here.
    pub in_flight: usize,
    /// Cache counters, or `None` when the cache is disabled
    /// (`cache_capacity == 0`).
    pub cache: Option<CacheStats>,
    /// Worker-side execution retries after panicking attempts.
    pub retries: u64,
    /// Worker threads restarted by the pool supervisor.
    pub restarts: u64,
    /// Requests resolved with [`ServeError::DeadlineExceeded`]
    /// (worker-side sheds and caller-side expiries combined).
    pub deadline_exceeded: u64,
    /// Requests answered with a [`Response::Degraded`] analytic
    /// estimate instead of a full simulation.
    pub degraded: u64,
    /// Faults the installed [`FaultPlan`] has fired so far (0 without
    /// a plan).
    pub faults_injected: u64,
    /// Composite batches (≥ 2 members) the admission batcher has
    /// routed to workers (0 without a scheduler).
    pub scheduler_batches: u64,
    /// Requests that traveled inside such a batch.
    pub scheduler_batched: u64,
    /// Requests the batcher degraded to plain FIFO submission: cold
    /// window, unpredictable spec or shape, or no compatible partner.
    pub scheduler_fifo_fallbacks: u64,
    /// Requests currently parked in the admission window.
    pub scheduler_window_occupancy: usize,
    /// Predicted pairwise conflict scores (×1000) summed over every
    /// co-scheduled group: the batcher's batches and every
    /// [`Response::MultiStream`] wave.
    pub scheduler_predicted_conflicts_milli: u64,
    /// Measured conflicts summed over every [`Response::MultiStream`]
    /// co-run — predicted-vs-actual in one snapshot.
    pub scheduler_actual_conflicts: u64,
    /// TCP connections a `cfva-wire` front end has accepted on behalf
    /// of this service. Always 0 from [`Service::stats`]: the service
    /// has no wire state of its own — `WireServer::stats` fills the
    /// `wire_*` trio in from its admission counters.
    pub wire_connections: u64,
    /// Requests a wire front end rejected at the connection boundary
    /// (per-connection in-flight cap, or service `Overloaded` /
    /// `ShuttingDown` forwarded onto the socket). Always 0 from
    /// [`Service::stats`].
    pub wire_rejections: u64,
    /// Wire-submitted requests currently in flight across every live
    /// connection. Always 0 from [`Service::stats`].
    pub wire_in_flight: usize,
}

/// The service's robustness counters, shared with every ticket and
/// with the admission batcher.
#[derive(Debug, Default)]
pub(crate) struct ServeCounters {
    retries: AtomicU64,
    deadline_exceeded: AtomicU64,
    degraded: AtomicU64,
    pub(crate) scheduler_batches: AtomicU64,
    pub(crate) scheduler_batched: AtomicU64,
    pub(crate) scheduler_fifo_fallbacks: AtomicU64,
    pub(crate) predicted_conflicts_milli: AtomicU64,
    pub(crate) actual_conflicts: AtomicU64,
}

/// One worker's session cache: canonical spec string → warm session.
#[derive(Debug, Default)]
pub(crate) struct SpecSessions {
    sessions: HashMap<String, BatchRunner>,
}

impl SpecSessions {
    /// The worker-side session lookup; builds (and caches) the session
    /// on first touch. `key` is the spec's canonical string, computed
    /// **once at submission** — the hot path allocates nothing (the
    /// `Entry` API would re-stringify the spec per request). Build
    /// failures are not cached — a transient failure (e.g. a matrix
    /// file appearing later) may succeed on retry.
    fn get_or_create(&mut self, key: &str, spec: &MapSpec) -> Result<&mut BatchRunner, ServeError> {
        if !self.sessions.contains_key(key) {
            let session = BatchRunner::from_spec(spec).map_err(ServeError::Spec)?;
            self.sessions.insert(key.to_string(), session);
        }
        // cfva-lint: allow(L002, reason = "contains_key two lines up guarantees the entry; the double lookup (vs the Entry API) avoids a per-request key allocation on the hot path")
        Ok(self.sessions.get_mut(key).expect("just ensured"))
    }
}

/// Decrements the in-flight gauge when the job finishes — held inside
/// the worker closure so a panicking request still decrements.
struct InFlightGuard(Arc<AtomicUsize>);

impl Drop for InFlightGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Plan/measure-as-a-service over the work-stealing session pool. See
/// the [module docs](self).
///
/// # Examples
///
/// ```
/// use cfva_serve::api::{Request, Response};
/// use cfva_serve::service::{Service, ServiceConfig};
/// use cfva_core::plan::Strategy;
/// use cfva_core::VectorSpec;
///
/// let service = Service::new(ServiceConfig::with_workers(2));
/// let tickets: Vec<_> = (0..4u64)
///     .map(|i| {
///         service
///             .submit(Request::Measure {
///                 spec: "xor-matched:t=3,s=3".into(),
///                 vec: VectorSpec::new(16 + i, 12, 64).unwrap(),
///                 strategy: Strategy::Auto,
///             })
///             .expect("queue has room")
///     })
///     .collect();
/// for ticket in tickets {
///     assert!(matches!(ticket.wait(), Ok(Response::Measured(Some(_)))));
/// }
/// service.shutdown(); // drains in-flight work, then joins the workers
/// ```
#[derive(Debug)]
pub struct Service {
    /// Shared so the admission batcher can hold a `Weak` back-edge
    /// without keeping the pool alive past shutdown.
    pool: Arc<Pool<SpecSessions>>,
    /// The conflict-aware admission batcher; `None` (the default)
    /// means plain FIFO admission with zero overhead.
    scheduler: Option<Arc<SchedulerShared>>,
    /// The memoized result cache; `None` when disabled.
    cache: Option<Arc<ResultCache>>,
    /// Canonical spec string → the map's `address_bits_used` (the one
    /// map-side input of the stride-class reduction), or `None` for a
    /// spec that parses but does not build — those have no sound cache
    /// key and bypass the cache. Populated once per spec.
    spec_used_bits: ClassedMutex<HashMap<String, Option<u32>>>,
    /// Canonical spec string → the built map the admission batcher
    /// scores with, or `None` for a spec that parses but does not
    /// build. Populated once per spec; only touched when a scheduler
    /// is installed. A separate mutex from `spec_used_bits` (same
    /// [`LockClass::SpecMeta`] label) so neither path lengthens the
    /// other's critical section.
    spec_maps: ClassedMutex<HashMap<String, Option<Arc<dyn ModuleMap + Send + Sync>>>>,
    /// Admitted-but-unresolved gauge (queued or executing).
    in_flight: Arc<AtomicUsize>,
    /// Robustness counters, shared with every pending ticket.
    counters: Arc<ServeCounters>,
    /// Caller-thread sessions for the submit-side degraded fallback
    /// (overload shedding never touches the saturated pool).
    degraded_sessions: ClassedMutex<HashMap<String, BatchRunner>>,
    /// Worker-side retry budget per request.
    max_retries: u32,
    /// Whether overload/retry-exhaustion degrade to analytic estimates.
    degraded_fallback: bool,
    /// Deadline applied to submissions without an explicit budget.
    default_budget: Option<Duration>,
    /// The installed chaos plan; `None` (the default) costs nothing.
    faults: Option<Arc<FaultPlan>>,
    /// Submission index — the [`FaultPlan`]'s submit-side clock. Only
    /// advanced when a plan is installed.
    submit_seq: AtomicU64,
}

impl Service {
    /// Spawns the worker pool. Workers start with empty session
    /// caches; sessions are built on first request per spec.
    ///
    /// # Panics
    ///
    /// Panics if `config.workers == 0` or `config.queue_capacity == 0`.
    pub fn new(config: ServiceConfig) -> Self {
        let mut options = PoolOptions::new().max_restarts(config.max_worker_restarts);
        if let Some(plan) = config.fault_plan.clone() {
            options = options.faults(plan);
        }
        let pool = Arc::new(Pool::with_options(
            config.workers,
            config.queue_capacity,
            options,
            |_| SpecSessions::default(),
        ));
        let counters = Arc::new(ServeCounters::default());
        let scheduler = config
            .scheduler
            .map(|sched| SchedulerShared::new(Arc::downgrade(&pool), sched, Arc::clone(&counters)));
        Service {
            pool,
            scheduler,
            cache: (config.cache_capacity > 0)
                .then(|| Arc::new(ResultCache::new(config.cache_capacity))),
            spec_used_bits: ClassedMutex::new(LockClass::SpecMeta, HashMap::new()),
            spec_maps: ClassedMutex::new(LockClass::SpecMeta, HashMap::new()),
            in_flight: Arc::new(AtomicUsize::new(0)),
            counters,
            degraded_sessions: ClassedMutex::new(LockClass::DegradedSessions, HashMap::new()),
            max_retries: config.max_retries,
            degraded_fallback: config.degraded_fallback,
            default_budget: config.default_budget,
            faults: config.fault_plan,
            submit_seq: AtomicU64::new(0),
        }
    }

    /// The worker count.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// The admission-queue bound.
    pub fn queue_capacity(&self) -> usize {
        self.pool.capacity()
    }

    /// Requests currently waiting for a worker.
    pub fn queue_depth(&self) -> usize {
        self.pool.queue_depth()
    }

    /// A snapshot of service load, cache and robustness counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            queue_depth: self.pool.queue_depth(),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            cache: self.cache.as_ref().map(|c| c.stats()),
            retries: self.counters.retries.load(Ordering::Relaxed),
            restarts: self.pool.restarts(),
            deadline_exceeded: self.counters.deadline_exceeded.load(Ordering::Relaxed),
            degraded: self.counters.degraded.load(Ordering::Relaxed),
            faults_injected: self.faults.as_ref().map_or(0, |p| p.injected()),
            scheduler_batches: self.counters.scheduler_batches.load(Ordering::Relaxed),
            scheduler_batched: self.counters.scheduler_batched.load(Ordering::Relaxed),
            scheduler_fifo_fallbacks: self
                .counters
                .scheduler_fifo_fallbacks
                .load(Ordering::Relaxed),
            scheduler_window_occupancy: self.scheduler.as_ref().map_or(0, |s| s.occupancy()),
            scheduler_predicted_conflicts_milli: self
                .counters
                .predicted_conflicts_milli
                .load(Ordering::Relaxed),
            scheduler_actual_conflicts: self.counters.actual_conflicts.load(Ordering::Relaxed),
            wire_connections: 0,
            wire_rejections: 0,
            wire_in_flight: 0,
        }
    }

    /// Drains the admission batcher's window (if a scheduler is
    /// installed): every parked request is scored, batched and
    /// submitted now. A no-op otherwise. Blocking on any scheduled
    /// ticket flushes implicitly; this is the explicit knob for
    /// fire-and-poll callers.
    pub fn flush(&self) {
        if let Some(scheduler) = &self.scheduler {
            scheduler.flush();
        }
    }

    /// Validates and enqueues `request`, returning the ticket its
    /// response will resolve through. When the result cache holds this
    /// request's response already, the ticket comes back **resolved**
    /// — no pool round trip (see the [module docs](self)).
    ///
    /// Synchronous rejections (the request was **not** queued):
    ///
    /// * [`ServeError::Spec`] — the spec string does not parse;
    /// * [`ServeError::Request`] — invalid sweep/estimator parameters
    ///   (even `sigma`, zero `per_family`, …);
    /// * [`ServeError::Overloaded`] — admission queue full;
    /// * [`ServeError::ShuttingDown`] — [`shutdown`](Self::shutdown)
    ///   has begun.
    ///
    /// Session-side failures (a spec that parses but cannot build)
    /// resolve through the ticket as `Err`.
    #[must_use = "the ServeTicket inside is the only handle to the response"]
    pub fn submit(&self, request: Request) -> Result<ServeTicket, ServeError> {
        self.submit_inner(request, true, self.default_budget)
    }

    /// [`submit`](Self::submit) without consulting or populating the
    /// result cache — the per-request bypass knob, for callers that
    /// want a fresh pooled execution (timing runs, cache-equivalence
    /// checks). Counted under [`CacheStats::bypasses`].
    #[must_use = "the ServeTicket inside is the only handle to the response"]
    pub fn submit_uncached(&self, request: Request) -> Result<ServeTicket, ServeError> {
        self.submit_inner(request, false, self.default_budget)
    }

    /// [`submit`](Self::submit) with a per-request deadline budget
    /// (overriding [`ServiceConfig::default_budget`]). The returned
    /// ticket resolves with [`ServeError::DeadlineExceeded`] once the
    /// budget elapses: workers shed the request instead of starting it
    /// late, and [`ServeTicket::wait`] never blocks past the deadline.
    #[must_use = "the ServeTicket inside is the only handle to the response"]
    pub fn submit_with_budget(
        &self,
        request: Request,
        budget: Duration,
    ) -> Result<ServeTicket, ServeError> {
        self.submit_inner(request, true, Some(budget))
    }

    fn submit_inner(
        &self,
        request: Request,
        use_cache: bool,
        budget: Option<Duration>,
    ) -> Result<ServeTicket, ServeError> {
        let parsed: MapSpec = request.spec().parse().map_err(ServeError::Spec)?;
        validate(&request)?;
        // Canonicalize once: the canonical string keys the affinity
        // router, the worker's session table and the result cache, so
        // equivalent spellings share a worker, a session and a cache
        // entry.
        let spec = parsed.canonical();
        let canon = spec.to_string();

        // Chaos hook: consume this submission index's scheduled fault
        // (if a plan is installed — the index only advances under one).
        let submit_fault = match &self.faults {
            Some(plan) => plan.take_submit_fault(self.submit_seq.fetch_add(1, Ordering::Relaxed)),
            None => None,
        };
        match submit_fault {
            // Poison *before* the cache consult, so this very request
            // sees the cold cache it just caused.
            Some(SubmitFault::PoisonCache) => {
                if let Some(cache) = &self.cache {
                    cache.invalidate_all();
                }
            }
            Some(SubmitFault::QueueBurst { jobs }) => {
                for _ in 0..jobs {
                    // Pressure jobs: no-ops whose tickets are dropped
                    // (abandoned) immediately; rejections are the point
                    // of the exercise, not an error.
                    let _ = self.pool.try_submit(|_sessions: &mut SpecSessions| ());
                }
            }
            _ => {}
        }
        let inject_panic = matches!(submit_fault, Some(SubmitFault::PanicJob));

        let key = match &self.cache {
            Some(cache) if use_cache => match self.cache_key(&canon, &request) {
                Some(key) => {
                    if let Some(response) = cache.get(&key) {
                        return Ok(ServeTicket::now(Ok(response)));
                    }
                    Some(key)
                }
                None => {
                    cache.note_bypass();
                    None
                }
            },
            Some(cache) => {
                cache.note_bypass();
                None
            }
            None => None,
        };
        let populate = match (&self.cache, key) {
            (Some(cache), Some(key)) => Some((Arc::clone(cache), key)),
            _ => None,
        };

        let worker = route(&canon, self.pool.workers());
        let deadline = budget.map(|b| Instant::now() + b);

        // Conflict-aware admission: a predictable single measurement
        // is parked in the batcher's window instead of being submitted
        // directly — see [`crate::sched`]. Everything else (and every
        // measurement against a spec that does not build, which has no
        // signature to score) degrades to the plain FIFO path below.
        if let Some(scheduler) = &self.scheduler {
            if let Request::Measure { vec, .. } = &request {
                match self.map_for(&canon) {
                    // The window rides on the admission bound: parked
                    // + queued must stay within capacity, else fall
                    // through for the normal Overloaded semantics.
                    Some(map)
                        if self.pool.queue_depth() + scheduler.occupancy()
                            < self.pool.capacity() =>
                    {
                        let signature = occupancy_signature(map.as_ref(), vec);
                        let module_count = map.module_count() as f64;
                        self.in_flight.fetch_add(1, Ordering::Relaxed);
                        let guard = InFlightGuard(Arc::clone(&self.in_flight));
                        let counters = Arc::clone(&self.counters);
                        let max_retries = self.max_retries;
                        let degrade = self.degraded_fallback;
                        let entry_canon = canon.clone();
                        let (run, ticket) = package(move |sessions: &mut SpecSessions| {
                            let _guard = guard;
                            serve_one(
                                sessions,
                                &canon,
                                &spec,
                                &request,
                                &populate,
                                ServeAttempts {
                                    deadline,
                                    budget,
                                    max_retries,
                                    degrade,
                                    inject_panic,
                                    counters: &counters,
                                },
                            )
                        });
                        scheduler.enqueue(WindowEntry {
                            run,
                            worker,
                            canon: entry_canon,
                            signature,
                            module_count,
                        });
                        return Ok(ServeTicket::pending(
                            ticket,
                            budget,
                            deadline,
                            Arc::clone(&self.counters),
                            Some(Arc::clone(scheduler)),
                        ));
                    }
                    Some(_) => {} // no window room: direct bounded path
                    None => scheduler.note_fifo_fallback(),
                }
            }
        }

        // Only the degraded overload path needs the request after the
        // closure takes it; clone up front only when that path is live.
        let fallback_inputs = (self.degraded_fallback && degradable(&request))
            .then(|| (canon.clone(), spec.clone(), request.clone()));
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        // The guard rides inside the closure from here on: any way the
        // job can end — completion, panic, rejection at the queue, or
        // being dropped unrun during an abort — drops the closure and
        // decrements the gauge. No manual error-path bookkeeping.
        let guard = InFlightGuard(Arc::clone(&self.in_flight));
        let counters = Arc::clone(&self.counters);
        let max_retries = self.max_retries;
        let degrade = self.degraded_fallback;
        let submitted = self
            .pool
            .try_submit_to(worker, move |sessions: &mut SpecSessions| {
                let _guard = guard;
                serve_one(
                    sessions,
                    &canon,
                    &spec,
                    &request,
                    &populate,
                    ServeAttempts {
                        deadline,
                        budget,
                        max_retries,
                        degrade,
                        inject_panic,
                        counters: &counters,
                    },
                )
            });
        match submitted {
            Ok(ticket) => Ok(ServeTicket::pending(
                ticket,
                budget,
                deadline,
                Arc::clone(&self.counters),
                None,
            )),
            Err(SubmitError::QueueFull {
                queue_depth,
                capacity,
            }) => {
                // Graceful degradation: shed the overload onto the O(1)
                // analytic estimator (caller thread — the saturated
                // pool is left alone) when the caller opted in and the
                // request shape degrades.
                if let Some((canon, spec, request)) = &fallback_inputs {
                    if let Some(response) = self.degrade_on_submit(canon, spec, request) {
                        self.counters.degraded.fetch_add(1, Ordering::Relaxed);
                        return Ok(ServeTicket::now(Ok(response)));
                    }
                }
                Err(ServeError::Overloaded {
                    queue_depth,
                    capacity,
                })
            }
            Err(SubmitError::ShuttingDown) => Err(ServeError::ShuttingDown),
        }
    }

    /// The submit-side degraded path: an analytic estimate computed on
    /// the **caller's** thread against the service's fallback session
    /// map. `None` when the request shape does not degrade
    /// (batch/efficiency) or the spec does not build.
    fn degrade_on_submit(
        &self,
        canon: &str,
        spec: &MapSpec,
        request: &Request,
    ) -> Option<Response> {
        if !degradable(request) {
            return None;
        }
        let mut sessions = self.degraded_sessions.lock();
        if !sessions.contains_key(canon) {
            let session = BatchRunner::from_spec(spec).ok()?;
            sessions.insert(canon.to_string(), session);
        }
        // cfva-lint: allow(L002, reason = "contains_key above guarantees the entry, mirroring SpecSessions::get_or_create")
        let session = sessions.get_mut(canon).expect("just ensured");
        degraded_response_session(session, request)
    }

    /// The cache key of `request` under the canonical spec `canon`, or
    /// `None` when no sound key exists (the spec does not build, so
    /// there is no map to class-reduce measurements under).
    fn cache_key(&self, canon: &str, request: &Request) -> Option<CacheKey> {
        let req = match request {
            Request::Measure { vec, strategy, .. } => RequestKey::Measure {
                class: StrideClass::reduce_with_used(self.used_bits(canon)?, vec),
                strategy: *strategy,
            },
            Request::MeasureBatch { accesses, .. } => {
                let used = self.used_bits(canon)?;
                RequestKey::Batch {
                    items: accesses
                        .iter()
                        .map(|(vec, strategy)| {
                            (StrideClass::reduce_with_used(used, vec), *strategy)
                        })
                        .collect(),
                }
            }
            Request::FamilySweep {
                len, max_x, sigma, ..
            } => RequestKey::FamilySweep {
                len: *len,
                max_x: *max_x,
                sigma: *sigma,
            },
            Request::Efficiency {
                strategy,
                len,
                estimator,
                seed,
                ..
            } => RequestKey::Efficiency {
                strategy: *strategy,
                len: *len,
                estimator: *estimator,
                seed: *seed,
            },
            Request::MultiStream {
                streams,
                strategy,
                policy,
                schedule,
                ..
            } => {
                let used = self.used_bits(canon)?;
                RequestKey::MultiStream {
                    streams: streams
                        .iter()
                        .map(|vec| StrideClass::reduce_with_used(used, vec))
                        .collect(),
                    strategy: *strategy,
                    policy: *policy,
                    schedule: *schedule,
                }
            }
        };
        Some(CacheKey {
            spec: canon.to_string(),
            req,
        })
    }

    /// The built map of the canonical spec — what the admission
    /// batcher scores occupancy signatures under — memoized per spec
    /// (including the negative result for specs that parse but do not
    /// build; those degrade to FIFO).
    fn map_for(&self, canon: &str) -> Option<Arc<dyn ModuleMap + Send + Sync>> {
        let mut maps = self.spec_maps.lock();
        if let Some(map) = maps.get(canon) {
            return map.clone();
        }
        let map: Option<Arc<dyn ModuleMap + Send + Sync>> = canon
            .parse::<MapSpec>()
            .ok()
            .and_then(|spec| Registry::builtin().build(&spec).ok())
            .map(Arc::from);
        maps.insert(canon.to_string(), map.clone());
        map
    }

    /// `address_bits_used` of the canonical spec's map — the one
    /// map-side input the stride-class reduction needs — computed by a
    /// one-time registry build per spec and memoized (including the
    /// negative result for specs that parse but do not build).
    fn used_bits(&self, canon: &str) -> Option<u32> {
        let mut meta = self.spec_used_bits.lock();
        if let Some(&used) = meta.get(canon) {
            return used;
        }
        let used = canon
            .parse::<MapSpec>()
            .ok()
            .and_then(|spec| Registry::builtin().build(&spec).ok())
            .map(|map| map.address_bits_used());
        meta.insert(canon.to_string(), used);
        used
    }

    /// Graceful shutdown: stops admission (further [`submit`]s fail
    /// with [`ServeError::ShuttingDown`]), drains every queued and
    /// in-flight request (their tickets resolve), then joins the
    /// workers. Dropping the service does the same. Takes `&self` so a
    /// shared service (e.g. behind an `Arc` under a network front end)
    /// can be shut down while handlers still hold it.
    ///
    /// [`submit`]: Self::submit
    pub fn shutdown(&self) {
        // Parked requests are accepted work: flush them into the pool
        // before admission closes, so their tickets resolve normally.
        self.flush();
        self.pool.shutdown();
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        // Parked requests are accepted work: route them into the pool
        // before it drains, so their tickets resolve normally instead
        // of being abandoned with the window.
        self.flush();
    }
}

/// FNV-1a over the canonical spec string — the affinity router. Plain
/// and dependency-free; all that matters is a stable spec → worker
/// assignment within one service lifetime.
fn route(key: &str, workers: usize) -> usize {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in key.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash % workers as u64) as usize
}

/// Submit-side parameter validation: everything that can be rejected
/// without a session is rejected before queueing.
fn validate(request: &Request) -> Result<(), ServeError> {
    match request {
        Request::Measure { .. } | Request::MeasureBatch { .. } => Ok(()),
        Request::MultiStream { schedule, .. } => match schedule {
            SchedulePlan::FifoWaves { width: 0 } | SchedulePlan::ConflictAware { width: 0, .. } => {
                Err(ServeError::Request(cfva_core::ConfigError::OutOfRange {
                    what: "width",
                    value: 0,
                    constraint: "wave width must be at least 1",
                }))
            }
            _ => Ok(()),
        },
        Request::FamilySweep {
            sigma, max_x, len, ..
        } => {
            // One probe constructs the sweep's largest access: rejects
            // zero/even sigma, an overflowing sigma·2^max_x, len == 0
            // and an address stream leaving u64 — synchronously, per
            // the contract that `Request` errors never reach the
            // ticket.
            let stride = Stride::from_parts(*sigma, *max_x).map_err(ServeError::Request)?;
            VectorSpec::with_stride(16u64.into(), stride, *len)
                .map(|_| ())
                .map_err(ServeError::Request)
        }
        Request::Efficiency { estimator, len, .. } => {
            // Probe the estimator's worst-case access up front, so an
            // out-of-domain parameter is a typed synchronous rejection
            // — never a worker-side panic re-raised at ticket.wait()
            // (the sampler asserts `max_x ≤ 40`, and an oversized
            // `sigma · 2^max_x · len` would trip construction expects
            // deep inside the estimator loops).
            let (max_x, max_sigma) = match estimator {
                Estimator::MonteCarlo {
                    samples,
                    max_x,
                    max_sigma,
                } => {
                    if *samples == 0 {
                        return Err(ServeError::Request(cfva_core::ConfigError::OutOfRange {
                            what: "samples",
                            value: 0,
                            constraint: "samples must be at least 1",
                        }));
                    }
                    if *max_sigma == 0 {
                        return Err(ServeError::Request(cfva_core::ConfigError::OutOfRange {
                            what: "max_sigma",
                            value: 0,
                            constraint: "max_sigma must be at least 1",
                        }));
                    }
                    (*max_x, *max_sigma)
                }
                Estimator::Stratified { max_x, per_family } => {
                    if *per_family == 0 {
                        return Err(ServeError::Request(cfva_core::ConfigError::OutOfRange {
                            what: "per_family",
                            value: 0,
                            constraint: "per_family must be at least 1",
                        }));
                    }
                    // The stratified loop draws `sigma ∈ {1, 3, …, 15}`.
                    (*max_x, 15)
                }
            };
            if max_x > 40 {
                return Err(ServeError::Request(cfva_core::ConfigError::OutOfRange {
                    what: "max_x",
                    value: u64::from(max_x),
                    constraint: "max_x must be at most 40",
                }));
            }
            // The largest odd part either estimator can draw.
            let worst_odd = max_sigma - u64::from(max_sigma % 2 == 0);
            let worst_sigma = i64::try_from(worst_odd).map_err(|_| {
                ServeError::Request(cfva_core::ConfigError::OutOfRange {
                    what: "max_sigma",
                    value: max_sigma,
                    constraint: "max_sigma must fit in i64",
                })
            })?;
            let worst_stride =
                Stride::from_parts(worst_sigma, max_x).map_err(ServeError::Request)?;
            // Both estimators draw bases below 2^24; the largest
            // base/stride/len combination must stay addressable (this
            // also rejects `len == 0`).
            VectorSpec::with_stride(((1u64 << 24) - 1).into(), worst_stride, *len)
                .map(|_| ())
                .map_err(ServeError::Request)
        }
    }
}

/// Per-request execution policy carried into [`serve_one`].
struct ServeAttempts<'a> {
    deadline: Option<Instant>,
    budget: Option<Duration>,
    max_retries: u32,
    degrade: bool,
    /// Chaos: panic on the first attempt ([`SubmitFault::PanicJob`]).
    inject_panic: bool,
    counters: &'a ServeCounters,
}

/// The worker-side request loop: deadline shed → execute under
/// `catch_unwind` → bounded retry with backoff → degraded fallback or
/// typed [`ServeError::WorkerPanicked`]. Requests are idempotent by
/// construction (responses are pure functions of the request, sessions
/// are rebuilt on demand), so re-execution after a panic is sound.
fn serve_one(
    sessions: &mut SpecSessions,
    canon: &str,
    spec: &MapSpec,
    request: &Request,
    populate: &Option<(Arc<ResultCache>, CacheKey)>,
    policy: ServeAttempts<'_>,
) -> ServeResult {
    let mut inject_panic = policy.inject_panic;
    let mut attempt: u32 = 0;
    loop {
        // Shed: a request past its deadline is not worth starting (or
        // re-starting) — resolve the typed error instead.
        if let Some(deadline) = policy.deadline {
            if Instant::now() >= deadline {
                policy
                    .counters
                    .deadline_exceeded
                    .fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::DeadlineExceeded {
                    budget: policy.budget.unwrap_or_default(),
                });
            }
        }
        let panic_now = std::mem::take(&mut inject_panic);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if panic_now {
                // cfva-lint: allow(L002, reason = "the injected fault itself — fires only under an installed FaultPlan, and the surrounding retry loop is its test subject")
                panic!("injected fault: request panicked by FaultPlan");
            }
            execute(sessions, canon, spec, request)
        }));
        match outcome {
            Ok(result) => {
                // Predicted-vs-actual accounting for co-run responses.
                // Cache hits skip this by design: the counters track
                // executed co-runs, and a hit executes nothing.
                if let Ok(Response::MultiStream(outcome)) = &result {
                    policy
                        .counters
                        .predicted_conflicts_milli
                        .fetch_add(outcome.predicted_conflicts_milli, Ordering::Relaxed);
                    policy
                        .counters
                        .actual_conflicts
                        .fetch_add(outcome.actual_conflicts, Ordering::Relaxed);
                }
                if let (Some((cache, key)), Ok(response)) = (populate, &result) {
                    // Degraded responses are never cached: they are
                    // stand-ins, not the request's true response.
                    if !matches!(response, Response::Degraded { .. }) {
                        cache.insert(key.clone(), response.clone());
                    }
                }
                return result;
            }
            Err(payload) => {
                attempt += 1;
                if attempt <= policy.max_retries {
                    policy.counters.retries.fetch_add(1, Ordering::Relaxed);
                    backoff(attempt);
                    continue;
                }
                // Retries exhausted. Degrade if the caller opted in and
                // the shape allows; otherwise surface the typed error.
                if policy.degrade && degradable(request) {
                    let fallback = catch_unwind(AssertUnwindSafe(|| {
                        let session = sessions.get_or_create(canon, spec).ok()?;
                        degraded_response_session(session, request)
                    }))
                    .ok()
                    .flatten();
                    if let Some(response) = fallback {
                        policy.counters.degraded.fetch_add(1, Ordering::Relaxed);
                        return Ok(response);
                    }
                }
                return Err(ServeError::WorkerPanicked {
                    attempts: attempt,
                    message: panic_message(payload.as_ref()),
                });
            }
        }
    }
}

/// Retry backoff: `2^attempt` scheduler yields. Deterministic in
/// structure (no wall-clock sleeps), cheap, and enough to let a
/// transiently-wedged resource settle between attempts.
fn backoff(attempt: u32) {
    for _ in 0..(1u32 << attempt.min(6)) {
        std::thread::yield_now();
    }
}

/// Whether the request shape has an analytic stand-in.
fn degradable(request: &Request) -> bool {
    matches!(
        request,
        Request::Measure { .. } | Request::FamilySweep { .. }
    )
}

/// `AccessStats` carrying an [`AnalyticEstimate`]'s aggregates, with
/// the per-element vectors (which the estimator does not produce)
/// empty.
fn stats_of(est: &AnalyticEstimate) -> AccessStats {
    AccessStats {
        latency: est.latency,
        elements: est.elements,
        stall_cycles: est.stall_cycles,
        conflicts: est.conflicts,
        arrival: Vec::new(),
        module_busy: Vec::new(),
        max_in_q: est.max_in_q,
    }
}

/// The analytic stand-in for a degradable request, against an existing
/// session. `None` only for non-degradable shapes.
fn degraded_response_session(session: &mut BatchRunner, request: &Request) -> Option<Response> {
    match request {
        Request::Measure { vec, strategy, .. } => {
            let (inner, exact) = match session.analytic(vec, *strategy) {
                Some(est) => (Response::Measured(Some(stats_of(&est))), est.exact),
                // The strategy cannot plan the access: the full path
                // would answer `Measured(None)`, exactly.
                None => (Response::Measured(None), true),
            };
            Some(Response::Degraded {
                response: Box::new(inner),
                exact,
            })
        }
        Request::FamilySweep {
            len, max_x, sigma, ..
        } => {
            let mut rows = Vec::with_capacity(*max_x as usize + 1);
            let mut exact = true;
            for x in 0..=*max_x {
                // Validated at submission: these constructions succeed
                // for every admitted sweep.
                let stride = Stride::from_parts(*sigma, x).ok()?;
                let vec = VectorSpec::with_stride(16u64.into(), stride, *len).ok()?;
                let est = session.analytic(&vec, Strategy::Auto)?;
                exact &= est.exact;
                let stats = stats_of(&est);
                rows.push(FamilyPoint {
                    x,
                    stride: stride.get(),
                    latency: stats.latency,
                    conflicts: stats.conflicts,
                    stall_cycles: stats.stall_cycles,
                    cycles_per_element: session.cycles_per_element(&stats),
                });
            }
            Some(Response::Degraded {
                response: Box::new(Response::FamilySweep(rows)),
                exact,
            })
        }
        Request::MeasureBatch { .. } | Request::Efficiency { .. } | Request::MultiStream { .. } => {
            None
        }
    }
}

/// The worker-side request dispatch, against the worker's session
/// cache. `canon` is the spec's canonical string, stringified once at
/// submission.
fn execute(
    sessions: &mut SpecSessions,
    canon: &str,
    spec: &MapSpec,
    request: &Request,
) -> ServeResult {
    let session = sessions.get_or_create(canon, spec)?;
    match request {
        Request::Measure { vec, strategy, .. } => {
            Ok(Response::Measured(session.measure_owned(vec, *strategy)))
        }
        Request::MeasureBatch { accesses, .. } => {
            Ok(Response::Batch(session.measure_batch(accesses)))
        }
        Request::FamilySweep {
            len, max_x, sigma, ..
        } => family_sweep(session, *len, *max_x, *sigma),
        Request::MultiStream {
            streams,
            strategy,
            policy,
            schedule,
            ..
        } => multi_stream(session, streams, *strategy, *policy, *schedule),
        Request::Efficiency {
            strategy,
            len,
            estimator,
            seed,
            ..
        } => {
            let mut rng = StdRng::seed_from_u64(*seed);
            let eta = match estimator {
                Estimator::MonteCarlo {
                    samples,
                    max_x,
                    max_sigma,
                } => {
                    let sampler = StrideSampler::new(*max_x, *max_sigma);
                    session.simulated_efficiency(*strategy, *len, *samples, &sampler, &mut rng)
                }
                Estimator::Stratified { max_x, per_family } => {
                    session.stratified_efficiency(*strategy, *len, *max_x, *per_family, &mut rng)
                }
            };
            Ok(Response::Efficiency(eta))
        }
    }
}

fn family_sweep(session: &mut BatchRunner, len: u64, max_x: u32, sigma: i64) -> ServeResult {
    let mut rows = Vec::with_capacity(max_x as usize + 1);
    for x in 0..=max_x {
        let stride = Stride::from_parts(sigma, x).map_err(ServeError::Request)?;
        let vec =
            VectorSpec::with_stride(16u64.into(), stride, len).map_err(ServeError::Request)?;
        let stats = session
            .measure_owned(&vec, Strategy::Auto)
            // cfva-lint: allow(L002, reason = "Strategy::Auto falls back to naive order, which plans for every valid spec/vector pair — see plan::auto")
            .expect("auto always plans");
        rows.push(FamilyPoint {
            x,
            stride: stride.get(),
            latency: stats.latency,
            conflicts: stats.conflicts,
            stall_cycles: stats.stall_cycles,
            cycles_per_element: session.cycles_per_element(&stats),
        });
    }
    Ok(Response::FamilySweep(rows))
}

/// [`Request::MultiStream`] execution: plan every stream, partition
/// into co-run waves under the requested [`SchedulePlan`] (scored by
/// the conflict predictor for
/// [`ConflictAware`](SchedulePlan::ConflictAware)), co-run each wave
/// on the multi-stream engine, and report per-stream statistics plus
/// the total makespan against the streams-run-alone sequential
/// baseline. The response is independent of how the *service* was
/// scheduled — only the request's own [`SchedulePlan`] shapes it.
fn multi_stream(
    session: &mut BatchRunner,
    streams: &[VectorSpec],
    strategy: Strategy,
    policy: IssuePolicy,
    schedule: SchedulePlan,
) -> ServeResult {
    let cfg = session.mem();
    let (plans, signatures, module_count) = {
        let planner = session.planner();
        let map = planner.map();
        let mut plans = Vec::with_capacity(streams.len());
        for vec in streams {
            let plan = match planner.plan(vec, strategy) {
                Ok(plan) => plan,
                // The requested strategy cannot serve this stream's
                // family/length; measure it in the order Auto picks
                // rather than failing the whole co-run.
                Err(_) => planner
                    .plan(vec, Strategy::Auto)
                    // cfva-lint: allow(L002, reason = "Strategy::Auto falls back to naive order, which plans for every valid spec/vector pair — see plan::auto")
                    .expect("auto always plans"),
            };
            plans.push(plan);
        }
        let signatures: Vec<_> = streams
            .iter()
            .map(|vec| occupancy_signature(map, vec))
            .collect();
        (plans, signatures, map.module_count() as f64)
    };
    let waves = plan_waves(streams.len(), schedule, |i, j| {
        score_milli(module_count, &signatures[i], &signatures[j])
    });
    let mut per_stream: Vec<Option<StreamSummary>> = streams.iter().map(|_| None).collect();
    let mut wave_makespans = Vec::with_capacity(waves.len());
    let mut predicted_conflicts_milli = 0u64;
    let mut actual_conflicts = 0u64;
    for (wave_ix, wave) in waves.iter().enumerate() {
        let refs: Vec<&AccessPlan> = wave.iter().map(|&i| &plans[i]).collect();
        let stats = run_multi(cfg, &refs, policy).map_err(ServeError::Request)?;
        actual_conflicts += stats.conflicts;
        for (pos, &i) in wave.iter().enumerate() {
            for &j in wave.iter().take(pos) {
                predicted_conflicts_milli +=
                    score_milli(module_count, &signatures[i], &signatures[j]);
            }
        }
        for (&i, stream) in wave.iter().zip(&stats.streams) {
            per_stream[i] = Some(StreamSummary {
                wave: wave_ix as u32,
                elements: stream.elements,
                first_issue: stream.first_issue,
                latency: stream.latency,
                spread: stream.spread,
                conflicts: stream.conflicts,
                stall_cycles: stream.stall_cycles,
            });
        }
        wave_makespans.push(stats.makespan);
    }
    // Waves run back to back: the schedule's makespan is their sum.
    let makespan = wave_makespans.iter().sum();
    let mut sequential_baseline = 0u64;
    for plan in &plans {
        sequential_baseline += session.run_plan(plan).latency;
    }
    Ok(Response::MultiStream(MultiStreamOutcome {
        // Waves partition the stream indices, so every slot is filled.
        per_stream: per_stream.into_iter().flatten().collect(),
        wave_makespans,
        makespan,
        sequential_baseline,
        predicted_conflicts_milli,
        actual_conflicts,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_stable_and_in_range() {
        for workers in [1, 2, 3, 8] {
            for key in ["xor-matched:t=3,s=4", "skewed:m=3,d=1", "interleaved:m=3"] {
                let w = route(key, workers);
                assert!(w < workers);
                assert_eq!(w, route(key, workers), "routing must be deterministic");
            }
        }
    }

    #[test]
    fn bad_spec_rejected_at_submit() {
        let service = Service::new(ServiceConfig::with_workers(1));
        let err = service
            .submit(Request::Measure {
                spec: "skewed:m".into(),
                vec: VectorSpec::new(0, 1, 16).unwrap(),
                strategy: Strategy::Auto,
            })
            .unwrap_err();
        assert!(matches!(err, ServeError::Spec(_)), "{err}");
        service.shutdown();
    }

    #[test]
    fn invalid_sweep_parameters_rejected_at_submit() {
        let service = Service::new(ServiceConfig::with_workers(1));
        // Even sigma, zero length, and an overflowing address stream
        // are all synchronous Request rejections — none may travel to
        // the worker and come back through the ticket.
        for (sigma, len, max_x) in [(4i64, 16u64, 3u32), (1, 0, 3), (1, 1 << 40, 40)] {
            let err = service
                .submit(Request::FamilySweep {
                    spec: "interleaved:m=3".into(),
                    len,
                    max_x,
                    sigma,
                })
                .map(|_| ())
                .unwrap_err();
            assert!(
                matches!(err, ServeError::Request(_)),
                "sigma {sigma} len {len} max_x {max_x}: {err}"
            );
        }
        service.shutdown();
    }

    #[test]
    fn out_of_domain_estimators_rejected_at_submit_not_worker_panic() {
        let service = Service::new(ServiceConfig::with_workers(1));
        let cases = [
            // Sampler cap: StdRng stride families top out at 40.
            Estimator::MonteCarlo {
                samples: 1,
                max_x: 41,
                max_sigma: 1,
            },
            // sigma · 2^max_x overflows i64.
            Estimator::Stratified {
                max_x: 63,
                per_family: 1,
            },
            // Stride fits, but base + stride·(len−1) leaves u64.
            Estimator::Stratified {
                max_x: 39,
                per_family: 1,
            },
        ];
        for (i, estimator) in cases.into_iter().enumerate() {
            let err = service
                .submit(Request::Efficiency {
                    spec: "interleaved:m=3".into(),
                    strategy: Strategy::Auto,
                    len: if i == 2 { 1 << 26 } else { 64 },
                    estimator,
                    seed: 0,
                })
                .map(|_| ())
                .unwrap_err();
            assert!(matches!(err, ServeError::Request(_)), "case {i}: {err}");
        }
        // The in-domain boundary still goes through.
        let ticket = service
            .submit(Request::Efficiency {
                spec: "interleaved:m=3".into(),
                strategy: Strategy::Auto,
                len: 64,
                estimator: Estimator::MonteCarlo {
                    samples: 4,
                    max_x: 40,
                    max_sigma: 9,
                },
                seed: 1,
            })
            .expect("in-domain estimator is accepted");
        assert!(matches!(ticket.wait(), Ok(Response::Efficiency(_))));
        service.shutdown();
    }

    #[test]
    fn unbuildable_spec_resolves_through_ticket() {
        // `custom-gf2:rows=0b11|0b11` parses (valid grammar) but is
        // rank deficient: the failure belongs to the session build on
        // the worker, so it must come back through the ticket.
        let service = Service::new(ServiceConfig::with_workers(1));
        let ticket = service
            .submit(Request::Measure {
                spec: "custom-gf2:rows=0b11|0b11".into(),
                vec: VectorSpec::new(0, 1, 16).unwrap(),
                strategy: Strategy::Auto,
            })
            .expect("grammar is valid, submission succeeds");
        match ticket.wait() {
            Err(ServeError::Spec(e)) => {
                assert_eq!(e, cfva_core::ConfigError::SingularMatrix)
            }
            other => panic!("expected a spec build error, got {other:?}"),
        }
        service.shutdown();
    }
}
