//! Stride workload generation under the paper's population model.

use cfva_core::mapping::{MapSpec, Registry};
use cfva_core::{Stride, VectorSpec};
use rand::Rng;

/// Samples strides with the paper's family distribution: family `x`
/// with probability `2^-(x+1)` (every extra factor of two halves the
/// population), odd part `σ` uniform over a configured range, random
/// sign optionally.
///
/// # Examples
///
/// ```
/// use cfva_serve::workload::StrideSampler;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let sampler = StrideSampler::new(10, 15);
/// let mut rng = StdRng::seed_from_u64(42);
/// let s = sampler.sample(&mut rng);
/// assert!(s.family().exponent() <= 10);
/// assert!(s.magnitude() > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrideSampler {
    max_x: u32,
    max_sigma: u64,
}

impl StrideSampler {
    /// Creates a sampler capping the family exponent at `max_x` (the
    /// tail probability beyond the cap is folded into the cap, keeping
    /// the distribution proper) and the odd part at `max_sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `max_sigma == 0` or `max_x > 40`.
    pub fn new(max_x: u32, max_sigma: u64) -> Self {
        assert!(max_sigma >= 1, "max_sigma must be at least 1");
        assert!(max_x <= 40, "max_x too large");
        StrideSampler { max_x, max_sigma }
    }

    /// Samples a family exponent: geometric with `p = 1/2`, capped.
    pub fn sample_family<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let mut x = 0;
        while x < self.max_x && rng.gen_bool(0.5) {
            x += 1;
        }
        x
    }

    /// Samples a positive stride.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Stride {
        let x = self.sample_family(rng);
        let sigma_count = self.max_sigma.div_ceil(2); // odd values <= max
        let sigma = 2 * rng.gen_range(0..sigma_count) + 1;
        // cfva-lint: allow(L002, reason = "sigma = 2k+1 is odd by construction and x is bounded by the family cap, so from_parts cannot fail")
        Stride::from_parts(sigma as i64, x).expect("odd sigma, bounded x")
    }

    /// Samples a whole vector access: stride from the population, base
    /// uniform in `[0, base_range)`.
    pub fn sample_vector<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        base_range: u64,
        len: u64,
    ) -> VectorSpec {
        let stride = self.sample(rng);
        let base = rng.gen_range(0..base_range);
        VectorSpec::with_stride(base.into(), stride, len)
            // cfva-lint: allow(L002, reason = "base < base_range and a just-sampled positive stride satisfy with_stride's range checks by construction")
            .expect("positive stride and bounded base cannot overflow")
    }
}

/// One representative stride per family `0..=max_x` with the given odd
/// part — for deterministic sweeps over families.
pub fn family_sweep(max_x: u32, sigma: i64) -> Vec<Stride> {
    (0..=max_x)
        // cfva-lint: allow(L002, reason = "callers pass an odd sigma (documented contract); from_parts only rejects even sigma here")
        .map(|x| Stride::from_parts(sigma, x).expect("odd sigma"))
        .collect()
}

/// The cross product of a registry's coverage specs with a family
/// sweep: one `(spec, stride)` point per registered map per family.
/// The comparative sweep grid — `experiments --map all`, sharded
/// sweeps, and anything that wants "every scheme on the same strides"
/// iterate this instead of hand-rolling a map list.
pub fn registry_family_grid(registry: &Registry, max_x: u32, sigma: i64) -> Vec<(MapSpec, Stride)> {
    let strides = family_sweep(max_x, sigma);
    registry
        .all_specs()
        .into_iter()
        .flat_map(|spec| strides.iter().map(move |&s| (spec.clone(), s)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn family_distribution_is_roughly_geometric() {
        let sampler = StrideSampler::new(20, 9);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let mut counts = [0u64; 21];
        for _ in 0..n {
            counts[sampler.sample_family(&mut rng) as usize] += 1;
        }
        // Family 0 ≈ 1/2, family 1 ≈ 1/4, family 2 ≈ 1/8.
        assert!((counts[0] as f64 / n as f64 - 0.5).abs() < 0.01);
        assert!((counts[1] as f64 / n as f64 - 0.25).abs() < 0.01);
        assert!((counts[2] as f64 / n as f64 - 0.125).abs() < 0.01);
    }

    #[test]
    fn sampled_strides_have_odd_sigma_in_range() {
        let sampler = StrideSampler::new(6, 15);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let s = sampler.sample(&mut rng);
            assert!(s.odd_part() % 2 != 0);
            assert!(s.odd_part() >= 1 && s.odd_part() <= 15);
            assert!(s.family().exponent() <= 6);
        }
    }

    #[test]
    fn sample_vector_is_valid() {
        let sampler = StrideSampler::new(6, 9);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let v = sampler.sample_vector(&mut rng, 1 << 20, 128);
            assert_eq!(v.len(), 128);
            assert!(v.base().get() < 1 << 20);
        }
    }

    #[test]
    fn family_sweep_is_one_per_family() {
        let sweep = family_sweep(5, 3);
        assert_eq!(sweep.len(), 6);
        for (x, s) in sweep.iter().enumerate() {
            assert_eq!(s.family().exponent() as usize, x);
            assert_eq!(s.odd_part(), 3);
        }
    }

    #[test]
    fn registry_grid_covers_every_map_and_family() {
        let registry = Registry::builtin();
        let grid = registry_family_grid(&registry, 4, 3);
        assert_eq!(grid.len(), registry.all_specs().len() * 5);
        // Grouped by spec, families ascending within each group.
        for chunk in grid.chunks(5) {
            assert!(chunk.iter().all(|(spec, _)| spec == &chunk[0].0));
            for (x, (_, stride)) in chunk.iter().enumerate() {
                assert_eq!(stride.family().exponent() as usize, x);
            }
        }
    }
}
