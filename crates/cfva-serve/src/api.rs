//! The typed request/response schema of plan/measure-as-a-service.
//!
//! One [`Request`] enum unifies the execution entry points that used to
//! be scattered across `BatchRunner` methods and experiment runners:
//! single measurements, batches, per-family spec sweeps and Section 5B
//! efficiency estimates. Maps are named by **registry spec strings**
//! (`"xor-matched:t=3,s=4"`, `"skewed:m=3,d=1"`, …— the grammar of
//! `cfva_core::mapping::MapSpec`), so a request fully describes the
//! machine to simulate; the service resolves the spec to a long-lived
//! per-worker session.
//!
//! Errors split by *where* they surface:
//!
//! * `Service::submit` rejects malformed requests synchronously —
//!   [`ServeError::Spec`] (unparseable spec string),
//!   [`ServeError::Request`] (invalid sweep/estimator parameters),
//!   [`ServeError::Overloaded`] (admission queue full — backpressure)
//!   and [`ServeError::ShuttingDown`];
//! * everything that needs the session — building the map (a
//!   rank-deficient matrix parses but does not construct), running the
//!   sweep — resolves through the returned ticket as the `Err` arm of
//!   [`ServeResult`].

use std::time::Duration;

use cfva_core::plan::Strategy;
use cfva_core::{ConfigError, VectorSpec};
use cfva_memsim::{AccessStats, IssuePolicy};

/// What a finished request resolves to: the response, or the typed
/// error the worker hit while serving it.
pub type ServeResult = Result<Response, ServeError>;

/// Section 5B efficiency estimator selection, mirroring the two
/// `BatchRunner` estimators.
///
/// `Hash` because the estimator parameters are part of the result
/// cache's request key (responses are deterministic in them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Estimator {
    /// Monte-Carlo over the family population
    /// (`BatchRunner::simulated_efficiency`): `samples` random strides
    /// with family exponent capped at `max_x` and odd part capped at
    /// `max_sigma`.
    MonteCarlo {
        /// Number of sampled accesses.
        samples: u32,
        /// Family-exponent cap of the stride population.
        max_x: u32,
        /// Odd-part cap of the stride population.
        max_sigma: u64,
    },
    /// Stratified per-family estimate
    /// (`BatchRunner::stratified_efficiency`): `per_family` draws for
    /// each family `x ≤ max_x`, combined with the exact `2^-(x+1)`
    /// weights.
    Stratified {
        /// Largest family exponent measured directly.
        max_x: u32,
        /// Random draws per family.
        per_family: u32,
    },
}

/// One unit of service work. Every variant names its map by registry
/// spec string; the serving layer routes same-spec requests to the
/// same worker so its cached session (planner, memory system, scratch
/// buffers) is reused across requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Plan and simulate one access (`BatchRunner::measure`).
    Measure {
        /// Map spec string, e.g. `"xor-matched:t=3,s=4"`.
        spec: String,
        /// The access to plan and simulate.
        vec: VectorSpec,
        /// Ordering strategy (use [`Strategy::Auto`] for the best
        /// available).
        strategy: Strategy,
    },
    /// Measure a batch of accesses through one session, results in
    /// submission order (`BatchRunner::measure_batch`).
    MeasureBatch {
        /// Map spec string.
        spec: String,
        /// The accesses, each with its strategy.
        accesses: Vec<(VectorSpec, Strategy)>,
    },
    /// Per-family latency sweep of the spec'd map — the request-shaped
    /// `experiments --map <spec>`: one representative stride
    /// `sigma · 2^x` per family `x ≤ max_x`, measured under
    /// [`Strategy::Auto`].
    FamilySweep {
        /// Map spec string.
        spec: String,
        /// Vector length of every swept access.
        len: u64,
        /// Largest family exponent swept.
        max_x: u32,
        /// Odd stride part shared by all families.
        sigma: i64,
    },
    /// Section 5B efficiency estimate of the spec'd map.
    Efficiency {
        /// Map spec string.
        spec: String,
        /// Ordering strategy for every sampled access.
        strategy: Strategy,
        /// Vector length of every sampled access.
        len: u64,
        /// Which estimator, with its parameters.
        estimator: Estimator,
        /// RNG seed — responses are deterministic in `(request, seed)`.
        seed: u64,
    },
    /// Co-schedule several vector streams through one memory system —
    /// the paper's Section 6 "several vectors simultaneously" scenario,
    /// served end to end: the streams are partitioned into **waves**
    /// per [`SchedulePlan`] (conflict-aware grouping uses the
    /// `equiv::conflict_score` predictor), each wave is co-run under
    /// the multi-stream engine (`cfva_memsim::run_multi`) with the
    /// requested [`IssuePolicy`], and the response reports per-stream
    /// statistics plus the makespan against the sequential baseline.
    MultiStream {
        /// Map spec string.
        spec: String,
        /// The concurrent streams, in submission order.
        streams: Vec<VectorSpec>,
        /// Ordering strategy for planning every stream (falls back to
        /// [`Strategy::Auto`] for streams it cannot plan, which always
        /// plans).
        strategy: Strategy,
        /// Per-stream issue arbitration within each wave.
        policy: IssuePolicy,
        /// How streams are partitioned into co-scheduled waves.
        schedule: SchedulePlan,
    },
}

/// How a [`Request::MultiStream`]'s streams are partitioned into
/// co-scheduled waves. All-integer so it can key the result cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulePlan {
    /// All streams in one wave — raw contention, no scheduling.
    Together,
    /// FIFO: consecutive chunks of `width` streams per wave, in
    /// submission order — the baseline a conflict-aware schedule is
    /// measured against.
    FifoWaves {
        /// Streams per wave (at least 1).
        width: u32,
    },
    /// Conflict-aware: greedy graph coloring on the predicted pairwise
    /// conflict scores (`cfva_core::equiv::conflict_score`) — a stream
    /// joins the first wave with room whose members it scores at most
    /// `max_score_milli` (score × 1000) against; otherwise a new wave
    /// opens.
    ConflictAware {
        /// Streams per wave (at least 1).
        width: u32,
        /// Pairwise admission threshold, score × 1000 (1000 ≈ the
        /// uniform-random reference: predicted module collisions at
        /// chance rate).
        max_score_milli: u32,
    },
}

impl Request {
    /// The map spec string this request names.
    pub fn spec(&self) -> &str {
        match self {
            Request::Measure { spec, .. }
            | Request::MeasureBatch { spec, .. }
            | Request::FamilySweep { spec, .. }
            | Request::Efficiency { spec, .. }
            | Request::MultiStream { spec, .. } => spec,
        }
    }
}

/// One row of a [`Response::FamilySweep`]: the measured cost of the
/// family's representative stride.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyPoint {
    /// Family exponent `x`.
    pub x: u32,
    /// The measured stride `sigma · 2^x`.
    pub stride: i64,
    /// Total access latency in cycles.
    pub latency: u64,
    /// Module conflicts encountered.
    pub conflicts: u64,
    /// Stall cycles.
    pub stall_cycles: u64,
    /// Steady-state service cycles per element (1.0 ⇔ conflict free).
    pub cycles_per_element: f64,
}

/// One stream's view of a [`Response::MultiStream`] co-run: the
/// `AccessStats`-grade accounting of the wave it was scheduled into,
/// attributed to this stream by the multi-stream engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamSummary {
    /// Which wave the scheduler placed this stream into (0-based).
    pub wave: u32,
    /// Elements in this stream.
    pub elements: u64,
    /// Cycle the stream's first request issued, within its wave.
    pub first_issue: u64,
    /// First issue to last arrival, inclusive (0 for an empty stream).
    pub latency: u64,
    /// First arrival to last arrival, inclusive (0 for an empty
    /// stream).
    pub spread: u64,
    /// Module conflicts charged to this stream (it lost arbitration or
    /// queued behind a busy module).
    pub conflicts: u64,
    /// Issue-stall cycles charged to this stream.
    pub stall_cycles: u64,
}

/// What a [`Request::MultiStream`] resolves to: per-stream statistics,
/// the wave structure the scheduler chose, and the makespan against
/// the sequential baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiStreamOutcome {
    /// One summary per requested stream, in submission order.
    pub per_stream: Vec<StreamSummary>,
    /// Simulated makespan of each wave, in wave order.
    pub wave_makespans: Vec<u64>,
    /// Total makespan: the waves run back to back, so this is the sum
    /// of the wave makespans.
    pub makespan: u64,
    /// Sum of each stream's latency measured **alone** — the
    /// no-co-scheduling baseline the makespan is compared against.
    pub sequential_baseline: u64,
    /// Sum of the predictor's pairwise conflict scores within each
    /// wave, × 1000 — what the schedule *predicted* it would pay.
    pub predicted_conflicts_milli: u64,
    /// Sum of measured conflicts across all waves — what it actually
    /// paid.
    pub actual_conflicts: u64,
}

/// What a [`Request`] produces, variant-for-variant.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// [`Request::Measure`]: the access statistics, or `None` when the
    /// requested strategy cannot plan the access (same contract as
    /// `BatchRunner::measure`).
    Measured(Option<AccessStats>),
    /// [`Request::MeasureBatch`]: one entry per access, in order.
    Batch(Vec<Option<AccessStats>>),
    /// [`Request::FamilySweep`]: one row per family, `x` ascending.
    FamilySweep(Vec<FamilyPoint>),
    /// [`Request::Efficiency`]: the estimated efficiency `η ∈ (0, 1]`.
    Efficiency(f64),
    /// [`Request::MultiStream`]: per-stream statistics, the wave
    /// structure the scheduler chose, and the contended makespan
    /// against the sequential baseline.
    MultiStream(MultiStreamOutcome),
    /// A **degraded** response: the service answered from the O(1)
    /// analytic steady-state estimator instead of a full simulation —
    /// either to shed overload
    /// ([`ServiceConfig::degraded_fallback`](crate::service::ServiceConfig)
    /// turning an [`ServeError::Overloaded`] rejection into an
    /// estimate) or after a request exhausted its retry budget.
    ///
    /// Only [`Request::Measure`] and [`Request::FamilySweep`] degrade;
    /// the wrapped response has the same shape the full path would
    /// produce, with aggregate statistics estimated (per-element
    /// vectors empty) and `exact` reporting whether every underlying
    /// estimate was provably equal to a full simulation. Degraded
    /// responses are never cached.
    Degraded {
        /// The estimated response ([`Response::Measured`] or
        /// [`Response::FamilySweep`] shaped).
        response: Box<Response>,
        /// `true` when every analytic estimate inside was provably
        /// exact (see `cfva_memsim::AnalyticEstimate::exact`).
        exact: bool,
    },
}

/// Typed service errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Backpressure: the admission queue already holds `queue_depth`
    /// requests against a capacity of `capacity`; this request was
    /// rejected, **not** queued. Retry later (or shed load).
    Overloaded {
        /// Requests waiting at the moment of rejection.
        queue_depth: usize,
        /// The configured admission capacity.
        capacity: usize,
    },
    /// The service is draining after `shutdown()`; no new requests.
    ShuttingDown,
    /// The request's map spec failed to parse or to build a session
    /// (unknown map, bad key/value, constraint violation — the
    /// diagnostic is the registry's own typed error).
    Spec(ConfigError),
    /// A non-spec request parameter is invalid (even sweep sigma, an
    /// overflowing address stream, …).
    Request(ConfigError),
    /// The request's deadline budget elapsed before a result was
    /// produced: either the worker shed the request before executing
    /// it (the ticket resolves with this error), or the caller's
    /// `wait` on the ticket gave up at the deadline. The request is
    /// **not** retried past its deadline.
    DeadlineExceeded {
        /// The budget the request was submitted with.
        budget: Duration,
    },
    /// The request kept panicking on its workers: every execution
    /// attempt (1 initial + the configured retries) died. The last
    /// attempt's panic message is carried for diagnosis.
    WorkerPanicked {
        /// Execution attempts made (initial + retries).
        attempts: u32,
        /// The final attempt's panic message.
        message: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded {
                queue_depth,
                capacity,
            } => write!(
                f,
                "service overloaded: {queue_depth} request(s) queued, capacity {capacity}"
            ),
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::Spec(e) => write!(f, "map spec rejected: {e}"),
            ServeError::Request(e) => write!(f, "request rejected: {e}"),
            ServeError::DeadlineExceeded { budget } => {
                write!(f, "deadline exceeded: budget {budget:?} elapsed")
            }
            ServeError::WorkerPanicked { attempts, message } => write!(
                f,
                "request panicked on its worker {attempts} time(s); last: {message}"
            ),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Spec(e) | ServeError::Request(e) => Some(e),
            _ => None,
        }
    }
}
