//! # cfva-serve — execution and serving substrate
//!
//! The scheduling layer under everything that measures: benches,
//! experiments and request serving all run on **one** substrate.
//!
//! * [`runner`] — measurement sessions: [`runner::BatchRunner`] owns a
//!   planner, one memory system and the plan/stats scratch buffers, so
//!   repeated measurement performs no heap allocation after warm-up.
//! * [`workload`] — stride populations under the paper's family model.
//! * [`pool`] — a hand-rolled work-stealing session pool
//!   (`std::thread` + `Mutex`/`Condvar`, no external runtime):
//!   per-worker local queues, a global injector, steal-on-idle, a
//!   bounded admission queue and [`pool::Ticket`] completion handles.
//!   [`runner::BatchRunner::sweep`] is a thin deterministic wrapper
//!   over it.
//! * [`service`] + [`api`] — plan/measure-as-a-service: a typed
//!   [`api::Request`]/[`api::Response`] schema (maps named by registry
//!   spec strings) behind a [`service::Service`] handle whose
//!   `submit()` returns a ticket; long-lived per-worker
//!   [`runner::BatchRunner`] sessions are cached by spec, and a full
//!   admission queue rejects with
//!   [`api::ServeError::Overloaded`] instead of queueing unboundedly.
//!   A sharded LRU **result cache**, keyed on the canonical spec plus
//!   the stride-equivalence class of the request (see
//!   [`cfva_core::StrideClass`]), resolves repeated requests without
//!   touching the pool — [`service::Service::stats`] reports its
//!   hit/miss/eviction counters.
//! * [`sched`] — the conflict-aware admission batcher: with
//!   [`sched::SchedulerConfig`] installed, predictable measurements
//!   are parked in a bounded window, scored pairwise with the
//!   conflict predictor ([`cfva_core::equiv::conflict_score`]), and
//!   routed to workers as predicted-conflict-free composite batches;
//!   cold windows and unpredictable specs degrade to FIFO. Responses
//!   are bit-identical with the scheduler on, off, or serial — only
//!   scheduling (latency) changes. [`api::Request::MultiStream`]
//!   exposes the same wave planner as a request: co-run a set of
//!   streams under FIFO or conflict-aware wave partitioning and
//!   measure the contended makespan against the sequential baseline.
//! * [`fault`] — the seeded, deterministic chaos injector
//!   ([`fault::FaultPlan`]): worker kills, job delays, queue bursts,
//!   cache poisoning and injected panics, threaded through the pool
//!   and service behind a hook that costs nothing when no plan is
//!   installed. The substrate it exercises is **self-healing**:
//!   supervised workers restart (in-flight jobs re-queued), panicked
//!   requests retry with backoff, per-request deadlines resolve
//!   [`api::ServeError::DeadlineExceeded`] instead of blocking, and
//!   overload can shed to the O(1) analytic estimator as
//!   [`api::Response::Degraded`] — see `tests/chaos.rs` for the
//!   invariants (every accepted ticket resolves, bit-identical to a
//!   fault-free serial run, under any seeded schedule).
//!
//! ```
//! use cfva_serve::api::{Request, Response};
//! use cfva_serve::service::{Service, ServiceConfig};
//! use cfva_core::plan::Strategy;
//! use cfva_core::VectorSpec;
//!
//! let service = Service::new(ServiceConfig::default());
//! let ticket = service.submit(Request::Measure {
//!     spec: "xor-matched:t=3,s=3".into(),
//!     vec: VectorSpec::new(16, 12, 64)?,
//!     strategy: Strategy::Auto,
//! })?;
//! match ticket.wait()? {
//!     Response::Measured(Some(stats)) => assert_eq!(stats.latency, 8 + 64 + 1),
//!     other => panic!("unexpected response {other:?}"),
//! }
//! service.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod api;
mod cache;
pub mod fault;
pub mod locks;
pub mod pool;
pub mod runner;
pub mod sched;
pub mod service;
pub mod workload;

pub use cache::CacheStats;
