//! Planner + simulator measurement sessions.
//!
//! Two tiers:
//!
//! * [`measure`] — the naive one-call path: plans and simulates one
//!   access, allocating a fresh [`MemorySystem`] and plan per call. Kept
//!   as the baseline the batch engine is benchmarked against
//!   (`benches/end_to_end.rs`).
//! * [`BatchRunner`] — a long-lived measurement session owning the
//!   planner, one memory system and the plan/stats scratch buffers.
//!   Repeated measurement through a session performs **no heap
//!   allocation** after warm-up; [`BatchRunner::sweep`] fans independent
//!   sweep points out across threads, one session per worker.

use cfva_core::plan::{AccessPlan, Planner, Strategy};
use cfva_core::VectorSpec;
use cfva_memsim::{AccessStats, AnalyticEstimate, Engine, MemConfig, MemorySystem};
use rand::Rng;

use crate::workload::StrideSampler;

/// Plans and simulates one vector access — the naive per-call path: a
/// fresh memory system and plan are allocated every call. Prefer a
/// [`BatchRunner`] for anything measured more than once.
///
/// Falls back per [`Strategy::Auto`] semantics if the requested strategy
/// cannot serve the access *and* `strategy` is `Auto`; otherwise
/// planning errors propagate as `None` (callers decide how to count
/// unservable accesses).
#[must_use = "an AccessStats is a paid-for measurement; dropping it wastes the simulation"]
pub fn measure(
    planner: &Planner,
    vec: &VectorSpec,
    strategy: Strategy,
    mem: MemConfig,
) -> Option<AccessStats> {
    let plan = planner.plan(vec, strategy).ok()?;
    Some(MemorySystem::new(mem).run_plan(&plan))
}

/// Steady-state service cycles per element of one access: the latency
/// minus the fixed startup (`T + 1`), divided by the element count.
/// Equals 1.0 for a conflict-free access.
pub fn cycles_per_element(stats: &AccessStats, mem: MemConfig) -> f64 {
    (stats.latency - mem.t_cycles() - 1) as f64 / stats.elements as f64
}

/// The naive Monte-Carlo efficiency sweep: every sample goes through
/// the per-call [`measure`] path (fresh system + fresh plan each time).
///
/// This is the **baseline** the batch engine is held against — both
/// `benches/end_to_end.rs` and `tests/batch_engine_speedup.rs` call
/// this one definition so the published bench and the enforced
/// acceptance test can never drift apart. Same estimator (and, for the
/// same RNG stream, bit-identical result) as
/// [`BatchRunner::simulated_efficiency`].
pub fn naive_simulated_efficiency<R: Rng + ?Sized>(
    planner: &Planner,
    strategy: Strategy,
    mem: MemConfig,
    len: u64,
    samples: u32,
    sampler: &StrideSampler,
    rng: &mut R,
) -> f64 {
    let mut total_cpe = 0.0;
    for _ in 0..samples {
        let vec = sampler.sample_vector(rng, 1 << 24, len);
        let stats =
            // cfva-lint: allow(L002, reason = "the sampler only emits specs the auto/canonical strategies can plan; a None here is a sampler bug")
            measure(planner, &vec, strategy, mem).expect("auto/canonical strategies always plan");
        total_cpe += cycles_per_element(&stats, mem);
    }
    samples as f64 / total_cpe
}

/// The reusable simulator-side state of a measurement session: one
/// memory system plus the plan and stats scratch buffers.
#[derive(Debug)]
struct MeasureScratch {
    system: MemorySystem,
    plan: AccessPlan,
    stats: AccessStats,
}

impl MeasureScratch {
    fn new(mem: MemConfig) -> Self {
        // Sessions default to `Engine::FastPath`, the head of the
        // FastPath → Periodic → Event chain: conflict-free accesses
        // take the verified one-pass shortcut, long conflicted
        // accesses fast-forward their steady-state periods in closed
        // form, and everything else runs on the event-queue engine —
        // all bit-identical to the cycle oracle (equivalence suites in
        // cfva-memsim/tests/{fast_path,event_engine,periodic_engine}.rs)
        // at a fraction of the cost. A `mem` carrying `Engine::Event`,
        // `Engine::Periodic` or `Engine::FastPath` via
        // `MemConfig::with_engine` is honored as-is. `Engine::Cycle`
        // is indistinguishable from the config default and therefore
        // CANNOT be requested through the config: a
        // verification-grade session must call
        // `BatchRunner::set_engine(Engine::Cycle)` after construction
        // (as the `window` experiment does).
        let mut system = MemorySystem::new(mem);
        if mem.engine() == Engine::Cycle {
            system.set_engine(Engine::FastPath);
        }
        MeasureScratch {
            system,
            plan: AccessPlan::new(),
            stats: AccessStats::default(),
        }
    }

    fn mem(&self) -> MemConfig {
        self.system.config()
    }

    /// One measurement through the reused buffers. `None` when the
    /// strategy cannot plan the access (same contract as [`measure`]).
    fn measure(
        &mut self,
        planner: &Planner,
        vec: &VectorSpec,
        strategy: Strategy,
    ) -> Option<&AccessStats> {
        planner.plan_into(vec, strategy, &mut self.plan).ok()?;
        self.system.run_plan_into(&self.plan, &mut self.stats);
        Some(&self.stats)
    }
}

fn simulated_efficiency_core<R: Rng + ?Sized>(
    planner: &Planner,
    scratch: &mut MeasureScratch,
    strategy: Strategy,
    len: u64,
    samples: u32,
    sampler: &StrideSampler,
    rng: &mut R,
) -> f64 {
    let mem = scratch.mem();
    let mut total_cpe = 0.0;
    for _ in 0..samples {
        let vec = sampler.sample_vector(rng, 1 << 24, len);
        let stats = scratch
            .measure(planner, &vec, strategy)
            // cfva-lint: allow(L002, reason = "the sampler only emits specs the auto/canonical strategies can plan; a None here is a sampler bug")
            .expect("auto/canonical strategies always plan");
        total_cpe += cycles_per_element(stats, mem);
    }
    samples as f64 / total_cpe
}

fn stratified_efficiency_core<R: Rng + ?Sized>(
    planner: &Planner,
    scratch: &mut MeasureScratch,
    strategy: Strategy,
    len: u64,
    max_x: u32,
    per_family: u32,
    rng: &mut R,
) -> f64 {
    let mem = scratch.mem();
    let mut avg_cpe = 0.0;
    let mut last_family_cpe = 1.0;
    for x in 0..=max_x {
        let mut family_cpe = 0.0;
        for _ in 0..per_family {
            let sigma = 2 * rng.gen_range(0i64..8) + 1;
            let base = rng.gen_range(0u64..1 << 24);
            // cfva-lint: allow(L002, reason = "sigma = 2k+1 is odd by construction and x <= max_x is validated upstream, so from_parts cannot fail")
            let stride = cfva_core::Stride::from_parts(sigma, x).expect("odd sigma, bounded x");
            // cfva-lint: allow(L002, reason = "base < 2^24 and the stride was just built, so with_stride's range checks hold by construction")
            let vec = VectorSpec::with_stride(base.into(), stride, len).expect("valid");
            let stats = scratch
                .measure(planner, &vec, strategy)
                // cfva-lint: allow(L002, reason = "the stratified estimator is only reachable with plannable strategies (validated at the service boundary)")
                .expect("strategy always plans");
            family_cpe += cycles_per_element(stats, mem);
        }
        family_cpe /= per_family as f64;
        let weight = 0.5f64.powi(x as i32 + 1);
        avg_cpe += weight * family_cpe;
        last_family_cpe = family_cpe;
    }
    // Fold the truncated tail (total weight 2^-(max_x+1)) into the last
    // measured family, whose cost has saturated.
    avg_cpe += 0.5f64.powi(max_x as i32 + 1) * last_family_cpe;
    1.0 / avg_cpe
}

/// Monte-Carlo estimate of the paper's Section 5B efficiency `η`: the
/// reciprocal of the population-average service cycles per element,
/// with strides sampled from the family distribution.
///
/// Runs through one internal measurement session, so the per-sample
/// cost is allocation-free after the first access.
pub fn simulated_efficiency<R: Rng + ?Sized>(
    planner: &Planner,
    strategy: Strategy,
    mem: MemConfig,
    len: u64,
    samples: u32,
    sampler: &StrideSampler,
    rng: &mut R,
) -> f64 {
    let mut scratch = MeasureScratch::new(mem);
    simulated_efficiency_core(planner, &mut scratch, strategy, len, samples, sampler, rng)
}

/// Stratified estimate of the Section 5B efficiency `η`: measures the
/// service cycles per element of each family `x ≤ max_x` directly
/// (averaged over `per_family` random σ/base draws) and combines them
/// with the exact family weights `2^-(x+1)`. The truncated tail
/// (`x > max_x`) reuses the `max_x` measurement, exact once the
/// per-family cost has saturated at `2^t` (i.e. `max_x ≥ w + t`).
///
/// Far lower variance than the plain Monte-Carlo estimator: the
/// geometric tail is weighted analytically instead of sampled. Runs
/// through one internal measurement session (allocation-free per
/// sample).
pub fn stratified_efficiency<R: Rng + ?Sized>(
    planner: &Planner,
    strategy: Strategy,
    mem: MemConfig,
    len: u64,
    max_x: u32,
    per_family: u32,
    rng: &mut R,
) -> f64 {
    let mut scratch = MeasureScratch::new(mem);
    stratified_efficiency_core(planner, &mut scratch, strategy, len, max_x, per_family, rng)
}

/// A long-lived measurement session: owns the planner, one reusable
/// [`MemorySystem`] and the plan/stats scratch buffers.
///
/// The hot path ([`measure`](Self::measure)) performs **no heap
/// allocation** once the buffers have grown to the working size: the
/// plan is built into the session's [`AccessPlan`] via
/// [`Planner::plan_into`], the system's module array is reset in place,
/// and the statistics land in the session's [`AccessStats`].
///
/// For parallel work, [`BatchRunner::sweep`] runs independent sweep
/// points across threads with one session per worker.
///
/// # Examples
///
/// ```
/// use cfva_serve::runner::BatchRunner;
/// use cfva_core::mapping::XorMatched;
/// use cfva_core::plan::{Planner, Strategy};
/// use cfva_core::VectorSpec;
/// use cfva_memsim::MemConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let planner = Planner::matched(XorMatched::new(3, 3)?);
/// let mut session = BatchRunner::new(planner, MemConfig::new(3, 3)?);
///
/// let vec = VectorSpec::new(16, 12, 64)?;
/// let stats = session.measure(&vec, Strategy::ConflictFree).unwrap();
/// assert_eq!(stats.latency, 8 + 64 + 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct BatchRunner {
    planner: Planner,
    scratch: MeasureScratch,
}

impl BatchRunner {
    /// Creates a session measuring `planner`'s plans on a memory of
    /// configuration `mem`.
    pub fn new(planner: Planner, mem: MemConfig) -> Self {
        BatchRunner {
            planner,
            scratch: MeasureScratch::new(mem),
        }
    }

    /// Creates a session from a runtime map spec: the planner comes
    /// from [`Planner::from_spec`] and the memory geometry from
    /// [`MemConfig::from_spec`] — the one-call path from a config
    /// string (CLI flag, request field) to a measuring session.
    ///
    /// # Examples
    ///
    /// ```
    /// use cfva_serve::runner::BatchRunner;
    /// use cfva_core::plan::Strategy;
    /// use cfva_core::VectorSpec;
    ///
    /// let mut session = BatchRunner::from_spec(&"xor-matched:t=3,s=3".parse()?)?;
    /// let stats = session.measure(&VectorSpec::new(16, 12, 64)?, Strategy::Auto).unwrap();
    /// assert_eq!(stats.latency, 8 + 64 + 1);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Spec resolution errors from the registry (unknown name, bad
    /// keys/values, map constraint violations).
    pub fn from_spec(spec: &cfva_core::mapping::MapSpec) -> Result<Self, cfva_core::ConfigError> {
        // One spec resolution for both halves: the planner is built
        // first and the memory geometry read off it, so a
        // `matrix=@file` spec parses its file once and planner and
        // memory can never come from different resolutions.
        let planner = Planner::from_spec(spec)?;
        let mem = MemConfig::new(planner.map().module_bits(), planner.t())?;
        Ok(BatchRunner::new(planner, mem))
    }

    /// [`from_spec`](Self::from_spec) from the unparsed spec string.
    ///
    /// # Errors
    ///
    /// Parse errors plus everything [`from_spec`](Self::from_spec)
    /// rejects.
    pub fn from_spec_str(spec: &str) -> Result<Self, cfva_core::ConfigError> {
        BatchRunner::from_spec(&spec.parse()?)
    }

    /// The planner this session measures with.
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// The memory configuration simulated.
    pub fn mem(&self) -> MemConfig {
        self.scratch.mem()
    }

    /// Selects the simulation engine for this session. Sessions start
    /// on [`Engine::FastPath`] — the `FastPath → Periodic → Event`
    /// chain: the verified conflict-free shortcut, then steady-state
    /// period fast-forwarding, then the plain event queue. Pick
    /// [`Engine::Cycle`] for verification-grade sweeps that must run
    /// the per-cycle oracle on every access, [`Engine::Event`] to
    /// force the event engine, or [`Engine::Periodic`] to skip the
    /// conflict-free shortcut but keep period extrapolation.
    pub fn set_engine(&mut self, engine: Engine) {
        self.scratch.system.set_engine(engine);
    }

    /// The engine this session simulates with.
    pub fn engine(&self) -> Engine {
        self.scratch.system.engine()
    }

    /// Enables or disables the simulator's verified conflict-free fast
    /// path (on by default in a session) — shorthand for
    /// [`set_engine`](Self::set_engine) with [`Engine::FastPath`] or
    /// the [`Engine::Cycle`] oracle. Disable it for verification-grade
    /// sweeps that must exercise the full cycle engine on every
    /// access.
    pub fn set_fast_path(&mut self, enabled: bool) {
        self.scratch.system.set_fast_path(enabled);
    }

    /// Plans and simulates one access through the reused buffers,
    /// returning a view of the session's stats buffer (valid until the
    /// next measurement).
    ///
    /// `None` when the strategy cannot plan the access — same contract
    /// as the free [`measure`], without its per-call allocations.
    #[must_use = "the measurement's statistics are its only output"]
    pub fn measure(&mut self, vec: &VectorSpec, strategy: Strategy) -> Option<&AccessStats> {
        self.scratch.measure(&self.planner, vec, strategy)
    }

    /// Like [`measure`](Self::measure) but returns views of **both**
    /// the plan built into the session's buffer and the resulting
    /// statistics — for callers that need to inspect the request
    /// stream (module sequence, entries) alongside its timing without
    /// allocating a plan of their own.
    #[must_use = "the plan/statistics views are the measurement's only output"]
    pub fn measure_full(
        &mut self,
        vec: &VectorSpec,
        strategy: Strategy,
    ) -> Option<(&AccessPlan, &AccessStats)> {
        let scratch = &mut self.scratch;
        self.planner
            .plan_into(vec, strategy, &mut scratch.plan)
            .ok()?;
        scratch
            .system
            .run_plan_into(&scratch.plan, &mut scratch.stats);
        Some((&scratch.plan, &scratch.stats))
    }

    /// Executes a caller-built plan (e.g. a concatenated short-vector
    /// stream from [`AccessPlan::concat`]) on the session's memory
    /// system, reusing the stats buffer.
    #[must_use = "the execution's statistics are its only output"]
    pub fn run_plan(&mut self, plan: &AccessPlan) -> &AccessStats {
        self.scratch
            .system
            .run_plan_into(plan, &mut self.scratch.stats);
        &self.scratch.stats
    }

    /// Like [`measure`](Self::measure) but returns an owned copy of the
    /// statistics, for callers that outlive the next measurement.
    #[must_use = "the measurement's statistics are its only output"]
    pub fn measure_owned(&mut self, vec: &VectorSpec, strategy: Strategy) -> Option<AccessStats> {
        self.measure(vec, strategy).cloned()
    }

    /// The O(1) analytic steady-state estimate of one access
    /// ([`MemorySystem::analytic_estimate`]) through the session's
    /// reused plan buffer — the serving layer's **degraded-mode
    /// fallback**: aggregate statistics without a full simulation,
    /// with [`AnalyticEstimate::exact`] reporting whether the estimate
    /// is provably equal to one.
    ///
    /// `None` when the strategy cannot plan the access — same contract
    /// as [`measure`](Self::measure).
    #[must_use = "the estimate is the computation's only output"]
    pub fn analytic(&mut self, vec: &VectorSpec, strategy: Strategy) -> Option<AnalyticEstimate> {
        self.planner
            .plan_into(vec, strategy, &mut self.scratch.plan)
            .ok()?;
        Some(self.scratch.system.analytic_estimate(&self.scratch.plan))
    }

    /// Steady-state service cycles per element under this session's
    /// memory configuration (1.0 for a conflict-free access).
    #[must_use = "the derived rate is the computation's only output"]
    pub fn cycles_per_element(&self, stats: &AccessStats) -> f64 {
        cycles_per_element(stats, self.scratch.mem())
    }

    /// Measures a batch of accesses, reusing the session buffers across
    /// the whole batch; one owned [`AccessStats`] (or `None` for
    /// unplannable accesses) per spec, in order.
    #[must_use = "the batch's statistics are its only output"]
    pub fn measure_batch(&mut self, specs: &[(VectorSpec, Strategy)]) -> Vec<Option<AccessStats>> {
        specs
            .iter()
            .map(|(vec, strategy)| self.measure_owned(vec, *strategy))
            .collect()
    }

    /// Monte-Carlo Section 5B efficiency through this session — see
    /// [`simulated_efficiency`].
    pub fn simulated_efficiency<R: Rng + ?Sized>(
        &mut self,
        strategy: Strategy,
        len: u64,
        samples: u32,
        sampler: &StrideSampler,
        rng: &mut R,
    ) -> f64 {
        simulated_efficiency_core(
            &self.planner,
            &mut self.scratch,
            strategy,
            len,
            samples,
            sampler,
            rng,
        )
    }

    /// Stratified Section 5B efficiency through this session — see
    /// [`stratified_efficiency`].
    pub fn stratified_efficiency<R: Rng + ?Sized>(
        &mut self,
        strategy: Strategy,
        len: u64,
        max_x: u32,
        per_family: u32,
        rng: &mut R,
    ) -> f64 {
        stratified_efficiency_core(
            &self.planner,
            &mut self.scratch,
            strategy,
            len,
            max_x,
            per_family,
            rng,
        )
    }

    /// Runs `run` over every sweep point, in parallel across the
    /// work-stealing session pool ([`crate::pool`]), with **one
    /// session per worker** (built by `make_session`); results come
    /// back in point order.
    ///
    /// Worker count is the machine's available parallelism, capped at
    /// the number of points; points are split into contiguous chunks,
    /// one chunk submitted to each worker's local queue, so a worker's
    /// session is reused across its whole chunk (an idle peer may
    /// steal a chunk, in which case *its* session — an identical
    /// `make_session()` build — runs it).
    ///
    /// Determinism: results are bit-identical to the serial loop
    /// `points.iter().map(|p| run(&mut session, p))` **provided each
    /// point is self-contained** — any randomness must be seeded per
    /// point (see `tests/batch_runner.rs`), never threaded through a
    /// shared RNG. The other half of the guarantee is the
    /// **submission-order merge**: one [`crate::pool::Ticket`] per
    /// contiguous chunk, awaited in the order the chunks were
    /// submitted and concatenated, so the output `Vec` is exactly the
    /// serial output regardless of which worker finishes (or steals)
    /// what. This is the same scheduling substrate the serving front
    /// end (`cfva_serve::service`) runs on — bench, experiments and
    /// serving share one pool implementation.
    ///
    /// ```
    /// use cfva_serve::runner::BatchRunner;
    /// use cfva_core::mapping::XorMatched;
    /// use cfva_core::plan::{Planner, Strategy};
    /// use cfva_core::VectorSpec;
    /// use cfva_memsim::MemConfig;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let make = || {
    ///     BatchRunner::new(
    ///         Planner::matched(XorMatched::new(2, 2).unwrap()),
    ///         MemConfig::new(2, 2).unwrap(),
    ///     )
    /// };
    /// let points: Vec<u64> = (0..13).collect();
    /// let run = |session: &mut BatchRunner, p: &u64| {
    ///     let vec = VectorSpec::new(3 + 8 * p, 4, 16).unwrap();
    ///     session.measure(&vec, Strategy::Auto).unwrap().latency
    /// };
    ///
    /// // Serial reference...
    /// let mut session = make();
    /// let serial: Vec<u64> = points.iter().map(|p| run(&mut session, p)).collect();
    /// // ...equals the pooled sweep: chunk results are merged in
    /// // *submission* order (ticket per chunk, awaited in the order
    /// // submitted), not completion order, so the output is the
    /// // serial Vec whichever worker finishes — or steals — a chunk.
    /// let parallel = BatchRunner::sweep_with_threads(4, make, &points, run);
    /// assert_eq!(parallel, serial);
    /// # Ok(())
    /// # }
    /// ```
    pub fn sweep<P, R>(
        make_session: impl Fn() -> BatchRunner + Sync,
        points: &[P],
        run: impl Fn(&mut BatchRunner, &P) -> R + Sync,
    ) -> Vec<R>
    where
        P: Sync,
        R: Send,
    {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::sweep_with_threads(threads, make_session, points, run)
    }

    /// [`sweep`](Self::sweep) with an explicit worker count (mainly for
    /// tests pinning the parallel path; `threads` is capped at the
    /// number of points).
    pub fn sweep_with_threads<P, R>(
        threads: usize,
        make_session: impl Fn() -> BatchRunner + Sync,
        points: &[P],
        run: impl Fn(&mut BatchRunner, &P) -> R + Sync,
    ) -> Vec<R>
    where
        P: Sync,
        R: Send,
    {
        let threads = threads.clamp(1, points.len().max(1));
        if threads <= 1 {
            let mut session = make_session();
            return points.iter().map(|p| run(&mut session, p)).collect();
        }

        let chunk_len = points.len().div_ceil(threads);
        // Rounding up the chunk length can leave fewer chunks than
        // requested workers (e.g. 5 points / 4 threads → 3 chunks of
        // 2); size the pool to the chunks so no worker builds a
        // session it will never use.
        let workers = points.len().div_ceil(chunk_len);
        let run = &run;
        crate::pool::scoped(
            workers,
            |_worker| make_session(),
            |pool| {
                // One contiguous chunk per worker-local queue; tickets
                // awaited in submission order, so the merged Vec is the
                // serial result whatever the execution interleaving.
                let tickets: Vec<crate::pool::Ticket<Vec<R>>> = points
                    .chunks(chunk_len)
                    .enumerate()
                    .map(|(worker, chunk)| {
                        pool.submit_to(worker, move |session: &mut BatchRunner| {
                            chunk.iter().map(|p| run(session, p)).collect::<Vec<R>>()
                        })
                    })
                    .collect();
                tickets
                    .into_iter()
                    .flat_map(crate::pool::Ticket::wait)
                    .collect()
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfva_core::mapping::XorMatched;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn measure_conflict_free() {
        let planner = Planner::matched(XorMatched::new(3, 3).unwrap());
        let vec = VectorSpec::new(16, 12, 64).unwrap();
        let mem = MemConfig::new(3, 3).unwrap();
        let stats = measure(&planner, &vec, Strategy::ConflictFree, mem).unwrap();
        assert_eq!(stats.latency, 73);
        assert_eq!(cycles_per_element(&stats, mem), 1.0);
    }

    #[test]
    fn measure_returns_none_for_unplannable() {
        let planner = Planner::matched(XorMatched::new(3, 3).unwrap());
        let vec = VectorSpec::new(0, 16, 64).unwrap(); // x = 4 > s
        let mem = MemConfig::new(3, 3).unwrap();
        assert!(measure(&planner, &vec, Strategy::ConflictFree, mem).is_none());
        assert!(measure(&planner, &vec, Strategy::Auto, mem).is_some());
    }

    #[test]
    fn batch_runner_matches_naive_measure() {
        let mem = MemConfig::new(3, 3).unwrap();
        let mut session = BatchRunner::new(Planner::matched(XorMatched::new(3, 4).unwrap()), mem);
        let naive_planner = Planner::matched(XorMatched::new(3, 4).unwrap());
        for (base, stride) in [(16u64, 12i64), (0, 1), (7, 6), (100, 4), (3, 160), (9, 96)] {
            let vec = VectorSpec::new(base, stride, 128).unwrap();
            for strategy in [
                Strategy::Canonical,
                Strategy::Subsequence,
                Strategy::ConflictFree,
                Strategy::Auto,
            ] {
                let naive = measure(&naive_planner, &vec, strategy, mem);
                let session_result = session.measure_owned(&vec, strategy);
                assert_eq!(
                    naive, session_result,
                    "base {base} stride {stride} strategy {strategy}"
                );
            }
        }
    }

    #[test]
    fn batch_runner_measure_batch_in_order() {
        let mem = MemConfig::new(3, 3).unwrap();
        let mut session = BatchRunner::new(Planner::matched(XorMatched::new(3, 3).unwrap()), mem);
        let specs = vec![
            (VectorSpec::new(16, 12, 64).unwrap(), Strategy::ConflictFree),
            (VectorSpec::new(0, 16, 64).unwrap(), Strategy::ConflictFree), // unplannable
            (VectorSpec::new(0, 1, 64).unwrap(), Strategy::Auto),
        ];
        let results = session.measure_batch(&specs);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].as_ref().unwrap().latency, 73);
        assert!(results[1].is_none());
        assert_eq!(results[2].as_ref().unwrap().latency, 73);
    }

    #[test]
    fn simulated_efficiency_close_to_analytic_for_proposed_scheme() {
        // Small config for speed: t = 2, λ = 6, s = λ−t = 4.
        let planner = Planner::matched(XorMatched::new(2, 4).unwrap());
        let mem = MemConfig::new(2, 2).unwrap();
        let sampler = StrideSampler::new(10, 9);
        let mut rng = StdRng::seed_from_u64(3);
        let eta = simulated_efficiency(&planner, Strategy::Auto, mem, 64, 400, &sampler, &mut rng);
        let analytic = cfva_core::analysis::efficiency(4, 2);
        assert!(
            (eta - analytic).abs() < 0.05,
            "simulated {eta} vs analytic {analytic}"
        );
    }

    #[test]
    fn stratified_efficiency_tracks_analytic_closely() {
        let planner = Planner::matched(XorMatched::new(2, 4).unwrap());
        let mem = MemConfig::new(2, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let eta = stratified_efficiency(&planner, Strategy::Auto, mem, 64, 8, 4, &mut rng);
        let analytic = cfva_core::analysis::efficiency(4, 2);
        assert!(
            (eta - analytic).abs() < 0.03,
            "stratified {eta} vs analytic {analytic}"
        );
    }

    #[test]
    fn session_efficiency_methods_match_free_functions() {
        let mem = MemConfig::new(2, 2).unwrap();
        let planner = Planner::matched(XorMatched::new(2, 4).unwrap());
        let sampler = StrideSampler::new(10, 9);

        let free = simulated_efficiency(
            &planner,
            Strategy::Auto,
            mem,
            64,
            100,
            &sampler,
            &mut StdRng::seed_from_u64(17),
        );
        let mut session = BatchRunner::new(Planner::matched(XorMatched::new(2, 4).unwrap()), mem);
        let through_session = session.simulated_efficiency(
            Strategy::Auto,
            64,
            100,
            &sampler,
            &mut StdRng::seed_from_u64(17),
        );
        assert_eq!(free, through_session);

        let free = stratified_efficiency(
            &planner,
            Strategy::Auto,
            mem,
            64,
            8,
            4,
            &mut StdRng::seed_from_u64(23),
        );
        let through_session =
            session.stratified_efficiency(Strategy::Auto, 64, 8, 4, &mut StdRng::seed_from_u64(23));
        assert_eq!(free, through_session);
    }

    #[test]
    fn session_engine_threads_through_config_and_setter() {
        let mem = MemConfig::new(3, 3).unwrap();

        // Default: the oracle config upgrades to the throughput engine.
        let session = BatchRunner::new(Planner::matched(XorMatched::new(3, 3).unwrap()), mem);
        assert_eq!(session.engine(), Engine::FastPath);

        // An explicit engine in the config is honored as-is.
        let session = BatchRunner::new(
            Planner::matched(XorMatched::new(3, 3).unwrap()),
            mem.with_engine(Engine::Event),
        );
        assert_eq!(session.engine(), Engine::Event);

        // And the setter pins the oracle for verification sweeps.
        let mut session = BatchRunner::new(Planner::matched(XorMatched::new(3, 3).unwrap()), mem);
        session.set_engine(Engine::Cycle);
        assert_eq!(session.engine(), Engine::Cycle);
        session.set_fast_path(false);
        assert_eq!(session.engine(), Engine::Cycle);
        session.set_fast_path(true);
        assert_eq!(session.engine(), Engine::FastPath);
    }

    #[test]
    fn all_session_engines_measure_identically() {
        let mem = MemConfig::new(3, 3).unwrap();
        let engines = [
            Engine::Cycle,
            Engine::Event,
            Engine::Periodic,
            Engine::FastPath,
        ];
        let mut sessions: Vec<BatchRunner> = engines
            .into_iter()
            .map(|engine| {
                let mut s = BatchRunner::new(Planner::matched(XorMatched::new(3, 4).unwrap()), mem);
                s.set_engine(engine);
                s
            })
            .collect();
        for (base, stride) in [(16u64, 12i64), (0, 1), (0, 8), (9, 96), (0, 256)] {
            let vec = VectorSpec::new(base, stride, 128).unwrap();
            for strategy in [Strategy::Canonical, Strategy::Auto] {
                let results: Vec<Option<AccessStats>> = sessions
                    .iter_mut()
                    .map(|s| s.measure_owned(&vec, strategy))
                    .collect();
                for (engine, result) in engines.iter().zip(&results).skip(1) {
                    assert_eq!(
                        &results[0], result,
                        "cycle vs {engine}: base {base} stride {stride} {strategy}"
                    );
                }
            }
        }
    }

    #[test]
    fn from_spec_session_matches_direct_construction() {
        let mem = MemConfig::new(3, 3).unwrap();
        let mut direct = BatchRunner::new(Planner::matched(XorMatched::new(3, 4).unwrap()), mem);
        let mut spec = BatchRunner::from_spec_str("xor-matched:t=3,s=4").unwrap();
        assert_eq!(spec.mem(), direct.mem());
        for (base, stride) in [(16u64, 12i64), (0, 1), (7, 6), (3, 160)] {
            let vec = VectorSpec::new(base, stride, 128).unwrap();
            for strategy in [Strategy::Canonical, Strategy::ConflictFree, Strategy::Auto] {
                assert_eq!(
                    direct.measure_owned(&vec, strategy),
                    spec.measure_owned(&vec, strategy),
                    "base {base} stride {stride} {strategy}"
                );
            }
        }
        // Spec errors surface with their diagnostic.
        let e = BatchRunner::from_spec_str("xor-matched:t=3").unwrap_err();
        assert!(e.to_string().contains("\"s\""), "{e}");
    }

    #[test]
    fn sweep_preserves_point_order() {
        let points: Vec<u64> = (0..37).collect();
        let results = BatchRunner::sweep_with_threads(
            4,
            || {
                BatchRunner::new(
                    Planner::matched(XorMatched::new(2, 2).unwrap()),
                    MemConfig::new(2, 2).unwrap(),
                )
            },
            &points,
            |session, &p| {
                let vec = VectorSpec::new(p, 1, 16).unwrap();
                session.measure(&vec, Strategy::Auto).unwrap().latency
            },
        );
        assert_eq!(results.len(), 37);
        // Unit stride is conflict free for every base: all latencies at
        // the floor.
        assert!(results.iter().all(|&l| l == 4 + 16 + 1));
    }
}
