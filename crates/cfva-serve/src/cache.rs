//! The memoized result cache behind the O(1) serve path.
//!
//! Responses are pure functions of `(map spec, request)` — and, for
//! measurements, of strictly *less* than the request: any two accesses
//! in one [`StrideClass`] produce bit-identical [`AccessStats`]
//! (`cfva-core/tests/stride_class.rs` proves it per map, the serve
//! proptests prove it end to end). The cache therefore keys on the
//! **canonical spec string** plus the **class-reduced request**, so a
//! repeated measurement — even spelled with a different base, an
//! equivalent odd part, or a scrambled spec string — resolves without
//! touching the pool.
//!
//! Sharded (8 ways, keyed by the request hash) so concurrent
//! submitters do not serialize on one lock; bounded with exact
//! least-recently-used eviction per shard (a monotonic clock stamp per
//! entry, the minimum evicted on overflow — an `O(shard)` scan, cheap
//! at serving shard sizes and free of linked-list bookkeeping). Only
//! `Ok` responses are cached: a session build failure may be transient
//! (a matrix file appearing later), and errors are cheap to recompute.
//!
//! Counters ([`CacheStats`]) are relaxed atomics — monitoring data,
//! not synchronization.

use std::collections::HashMap;
use std::hash::{BuildHasher, RandomState};
use std::sync::atomic::{AtomicU64, Ordering};

use cfva_core::plan::Strategy;
use cfva_core::StrideClass;
use cfva_memsim::IssuePolicy;

use crate::api::{Estimator, Response, SchedulePlan};
use crate::locks::{ClassedMutex, LockClass};

/// Shard count; a power of two so the shard pick is a mask.
const SHARDS: usize = 8;

/// The request part of a cache key, with measurements reduced to their
/// stride-equivalence classes (see the [module docs](self)).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum RequestKey {
    /// `Request::Measure`, class-reduced.
    Measure {
        /// The access's stride-equivalence class under the spec'd map.
        class: StrideClass,
        /// The requested ordering strategy.
        strategy: Strategy,
    },
    /// `Request::MeasureBatch`, each access class-reduced, in order.
    Batch {
        /// The batch's classes with their strategies, in request order.
        items: Vec<(StrideClass, Strategy)>,
    },
    /// `Request::FamilySweep` — already fully determined by its
    /// parameters (the sweep constructs its own accesses).
    FamilySweep {
        /// Vector length of every swept access.
        len: u64,
        /// Largest family exponent swept.
        max_x: u32,
        /// Odd stride part shared by all families.
        sigma: i64,
    },
    /// `Request::MultiStream`, each stream class-reduced, in order.
    /// Sound for the same reason as `Measure`: per-stream statistics,
    /// wave structure, and conflict counts are invariant within a
    /// stream's stride class under the spec'd map.
    MultiStream {
        /// The streams' stride-equivalence classes, in request order.
        streams: Vec<StrideClass>,
        /// The ordering strategy every stream is planned with.
        strategy: Strategy,
        /// The issue policy of every co-run wave.
        policy: IssuePolicy,
        /// The wave-partition plan (FIFO vs conflict-aware, width).
        schedule: SchedulePlan,
    },
    /// `Request::Efficiency` — deterministic in `(parameters, seed)`.
    Efficiency {
        /// Ordering strategy for every sampled access.
        strategy: Strategy,
        /// Vector length of every sampled access.
        len: u64,
        /// Estimator selection and parameters.
        estimator: Estimator,
        /// The RNG seed.
        seed: u64,
    },
}

/// A full cache key: canonical spec string + class-reduced request.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    /// The **canonical** spec string (`MapSpec::canonical`), so
    /// equivalent spellings share one entry.
    pub(crate) spec: String,
    /// The class-reduced request.
    pub(crate) req: RequestKey,
}

/// One cached response with its recency stamp.
#[derive(Debug)]
struct Entry {
    value: Response,
    stamp: u64,
}

/// Counters and occupancy of the serving result cache, as reported by
/// `Service::stats()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests resolved from the cache (no pool submission).
    pub hits: u64,
    /// Cacheable requests that went to the pool (and populate the
    /// cache on success).
    pub misses: u64,
    /// Entries evicted to stay within the capacity bound.
    pub evictions: u64,
    /// Requests that skipped the cache: explicit
    /// `Service::submit_uncached` calls, and requests with no sound
    /// key (an unbuildable spec has no stride-class reduction).
    pub bypasses: u64,
    /// Entries dropped by whole-cache invalidation (the fault
    /// injector's cache poisoning, or an explicit flush) — distinct
    /// from capacity `evictions`.
    pub invalidations: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// The configured capacity bound.
    pub capacity: usize,
}

impl CacheStats {
    /// Hits as a fraction of cache-consulting requests (`0.0` before
    /// any lookup; never `NaN`).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

/// The sharded, bounded, LRU result cache. See the [module docs](self).
#[derive(Debug)]
pub(crate) struct ResultCache {
    shards: Vec<ClassedMutex<HashMap<CacheKey, Entry>>>,
    /// Entry bound per shard (total capacity split evenly, minimum 1).
    shard_capacity: usize,
    /// Monotonic recency clock; every touch stamps the entry.
    clock: AtomicU64,
    /// Stable hasher for shard selection (the maps hash independently).
    shard_hasher: RandomState,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    bypasses: AtomicU64,
    invalidations: AtomicU64,
}

impl ResultCache {
    /// A cache bounded to (about) `capacity` entries. `capacity` must
    /// be at least 1 — a zero capacity means "no cache" and is the
    /// caller's branch, not this type's.
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "a result cache needs capacity");
        ResultCache {
            shards: (0..SHARDS)
                .map(|_| ClassedMutex::new(LockClass::CacheShard, HashMap::new()))
                .collect(),
            shard_capacity: capacity.div_ceil(SHARDS).max(1),
            clock: AtomicU64::new(0),
            shard_hasher: RandomState::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            bypasses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CacheKey) -> &ClassedMutex<HashMap<CacheKey, Entry>> {
        // cfva-lint: allow(L002, reason = "index is masked with SHARDS - 1, a power-of-two bound, so it is always < SHARDS")
        &self.shards[(self.shard_hasher.hash_one(key) as usize) & (SHARDS - 1)]
    }

    /// Looks `key` up, counting a hit (and refreshing the entry's
    /// recency) or a miss.
    pub(crate) fn get(&self, key: &CacheKey) -> Option<Response> {
        let mut shard = self.shard(key).lock();
        match shard.get_mut(key) {
            Some(entry) => {
                entry.stamp = self.clock.fetch_add(1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.value.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) `key → value`, evicting the shard's
    /// least-recently-used entry if it is full. Concurrent misses of
    /// the same key overwrite each other — responses are deterministic,
    /// so both wrote the same value.
    pub(crate) fn insert(&self, key: CacheKey, value: Response) {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(&key).lock();
        if !shard.contains_key(&key) && shard.len() >= self.shard_capacity {
            if let Some(oldest) = shard
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
            {
                shard.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.insert(key, Entry { value, stamp });
    }

    /// Counts a request that skipped the cache.
    pub(crate) fn note_bypass(&self) {
        self.bypasses.fetch_add(1, Ordering::Relaxed);
    }

    /// Drops every resident entry — the fault injector's cache
    /// poisoning. Correctness-neutral by construction: the next lookup
    /// of any dropped key misses and recomputes the same deterministic
    /// response. Shards are flushed one at a time (the lock hierarchy
    /// holds one shard at most), so a concurrent insert may survive;
    /// that is fine — poisoning promises "entries dropped", not a
    /// linearized snapshot.
    pub(crate) fn invalidate_all(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock();
            let dropped = shard.len() as u64;
            shard.clear();
            drop(shard);
            self.invalidations.fetch_add(dropped, Ordering::Relaxed);
        }
    }

    /// A snapshot of the counters and occupancy.
    pub(crate) fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bypasses: self.bypasses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| s.lock().len()).sum(),
            capacity: self.shard_capacity * SHARDS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(seed: u64) -> CacheKey {
        CacheKey {
            spec: "interleaved:m=3".to_string(),
            req: RequestKey::Efficiency {
                strategy: Strategy::Auto,
                len: 64,
                estimator: Estimator::Stratified {
                    max_x: 4,
                    per_family: 1,
                },
                seed,
            },
        }
    }

    #[test]
    fn hit_miss_and_occupancy_counters() {
        let cache = ResultCache::new(64);
        assert_eq!(cache.get(&key(1)), None);
        cache.insert(key(1), Response::Efficiency(0.5));
        assert_eq!(cache.get(&key(1)), Some(Response::Efficiency(0.5)));
        assert_eq!(cache.get(&key(2)), None);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 1));
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_bound_evicts_least_recently_used() {
        // Capacity 8 → one entry per shard: every insert beyond a
        // shard's slot evicts its previous occupant.
        let cache = ResultCache::new(8);
        for seed in 0..64 {
            cache.insert(key(seed), Response::Efficiency(seed as f64));
        }
        let stats = cache.stats();
        assert!(stats.entries <= 8, "bounded: {} entries", stats.entries);
        assert_eq!(stats.evictions as usize + stats.entries, 64);

        // Recency: with two slots per shard, an entry touched before
        // every insert always outranks the churn slot — it must never
        // be the LRU victim.
        let cache = ResultCache::new(16);
        cache.insert(key(0), Response::Efficiency(0.0));
        for seed in 1..256 {
            cache.get(&key(0));
            cache.insert(key(seed), Response::Efficiency(seed as f64));
        }
        assert_eq!(
            cache.get(&key(0)),
            Some(Response::Efficiency(0.0)),
            "a constantly-touched entry is never the LRU victim"
        );
    }

    #[test]
    fn invalidate_all_flushes_everything_and_counts_it() {
        let cache = ResultCache::new(64);
        for seed in 0..10 {
            cache.insert(key(seed), Response::Efficiency(seed as f64));
        }
        cache.invalidate_all();
        let stats = cache.stats();
        assert_eq!(stats.entries, 0, "poisoned cache holds nothing");
        assert_eq!(stats.invalidations, 10);
        assert_eq!(stats.evictions, 0, "invalidation is not eviction");
        assert_eq!(cache.get(&key(3)), None, "flushed entries simply miss");
    }

    #[test]
    fn equivalent_spellings_would_share_keys() {
        // The key is the canonical spec string: the service hands every
        // spelling through `MapSpec::canonical()` first, so this is the
        // identity that makes "xor-matched:s=0x4,t=3" hit the entry of
        // "xor-matched:s=4,t=3".
        let a = CacheKey {
            spec: "xor-matched:s=4,t=3".into(),
            req: RequestKey::FamilySweep {
                len: 64,
                max_x: 4,
                sigma: 1,
            },
        };
        let b = a.clone();
        assert_eq!(a, b);
        let cache = ResultCache::new(16);
        cache.insert(a, Response::FamilySweep(Vec::new()));
        assert!(cache.get(&b).is_some());
    }
}
