//! Property tests of the lexer's two load-bearing guarantees — the
//! stream is lossless (spans tile the input exactly, positions are
//! derivable from offsets) and container syntax is never misclassified
//! (data inside strings is not code, code inside comments is not code,
//! `#[cfg(test)]` bodies are not library code).
//!
//! The vendored proptest has no grammar combinators, so every case is
//! driven by a sampled `u64` seed expanded through a small splitmix64
//! generator: same seed, same snippet.

use cfva_lint::lexer::{self, TokenKind};
use proptest::prelude::*;

/// Deterministic snippet generator: splitmix64 over a proptest-drawn
/// seed, so a failing case reproduces from its printed seed alone.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn pick<'a>(&mut self, choices: &[&'a str]) -> &'a str {
        choices[self.below(choices.len())]
    }
}

/// One random lexeme-ish fragment. Adjacent fragments may merge into a
/// single token (`'a` + `bc` is one lifetime) — that changes the
/// classification, never the losslessness.
fn fragment(g: &mut Gen) -> String {
    match g.below(9) {
        0 => g
            .pick(&["foo", "bar_baz", "r#type", "_x", "αβγ", "self", "return"])
            .to_string(),
        1 => g
            .pick(&["0", "1.5e3", "0x1f", "0b10_01", "42_000", "9"])
            .to_string(),
        2 => g
            .pick(&[
                "\"a b\"",
                "\"esc \\\" quote\"",
                "\"// not a comment\"",
                "b\"bytes\\n\"",
                "\"/* data */\"",
            ])
            .to_string(),
        3 => raw_string(g),
        4 => {
            let depth = 1 + g.below(3);
            block_comment(g, depth)
        }
        5 => g
            .pick(&[
                "// line comment\n",
                "/// doc\n",
                "//! inner doc\n",
                "//// plain\n",
            ])
            .to_string(),
        6 => g
            .pick(&["'x'", "'\\n'", "'\\u{1F600}'", "b'q'", "'a ", "'static "])
            .to_string(),
        7 => g
            .pick(&[".", "::", "[", "]", "(", ")", "{", "}", ";", "->", "=", "#"])
            .to_string(),
        _ => g.pick(&[" ", "\n", "\t", "  \n  ", "\r\n"]).to_string(),
    }
}

/// A raw (possibly byte) string with a random fence of 0–3 hashes and
/// lookalike-rich body that never closes the fence early.
fn raw_string(g: &mut Gen) -> String {
    let fence = g.below(4);
    let hashes = "#".repeat(fence);
    let mut body = String::new();
    for _ in 0..g.below(4) {
        body.push_str(g.pick(&["abc ", "// look ", "/* look */ ", "'q' ", "\\ "]));
        if fence >= 1 {
            // A quote is data while fewer than `fence` hashes follow.
            body.push_str(g.pick(&["\" ", "\"x ", ""]));
        }
    }
    let b = if g.below(2) == 0 { "b" } else { "" };
    format!("{b}r{hashes}\"{body}\"{hashes}")
}

/// A nested block comment of the given depth with code lookalikes in
/// its body.
fn block_comment(g: &mut Gen, depth: usize) -> String {
    let mut body = g
        .pick(&[
            "x.unwrap() ",
            "panic!(\"no\") ",
            "\"unterminated ",
            "let y = 1; ",
        ])
        .to_string();
    if depth > 1 {
        body.push_str(&block_comment(g, depth - 1));
        body.push(' ');
    }
    format!("/* {body}*/")
}

/// The lexer's own position accounting, recomputed independently:
/// 1-based line, 1-based byte column.
fn position_of(src: &str, offset: usize) -> (u32, u32) {
    let before = &src.as_bytes()[..offset];
    let line = 1 + before.iter().filter(|&&b| b == b'\n').count() as u32;
    let line_start = before
        .iter()
        .rposition(|&b| b == b'\n')
        .map_or(0, |p| p + 1);
    (line, (offset - line_start + 1) as u32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Spans tile the input exactly — concatenating the tokens
    /// reproduces the source byte for byte — and every token's stored
    /// line/column matches an independent recomputation from its byte
    /// offset.
    #[test]
    fn token_soup_round_trips(seed in 0u64..u64::MAX) {
        let mut g = Gen(seed);
        let mut src = String::new();
        for _ in 0..g.below(40) {
            src.push_str(&fragment(&mut g));
        }
        let tokens = lexer::lex(&src);

        let rebuilt: String = tokens.iter().map(|t| t.text(&src)).collect();
        prop_assert_eq!(&rebuilt, &src);

        let mut cursor = 0usize;
        for t in &tokens {
            prop_assert_eq!(t.start, cursor);
            prop_assert!(t.end > t.start);
            let (line, col) = position_of(&src, t.start);
            prop_assert_eq!((t.line, t.col), (line, col));
            cursor = t.end;
        }
        prop_assert_eq!(cursor, src.len());
    }

    /// Comment and code lookalikes inside string literals stay inside
    /// one string token: a snippet whose only non-trivia content is a
    /// generated (raw) string produces no comment tokens, and the
    /// literal survives as a single token.
    #[test]
    fn string_bodies_are_never_comments(seed in 0u64..u64::MAX) {
        let mut g = Gen(seed);
        let lit = if g.below(2) == 0 {
            raw_string(&mut g)
        } else {
            g.pick(&[
                "\"// not a comment\"",
                "\"/* not a block */\"",
                "\"x.unwrap() \\\" // \"",
                "b\"/*! bytes */\"",
            ])
            .to_string()
        };
        let src = format!("let s = {lit};");
        let tokens = lexer::lex(&src);
        prop_assert!(tokens.iter().all(|t| !t.kind.is_comment()));
        let literal = tokens
            .iter()
            .find(|t| t.kind.is_stringish())
            .map(|t| t.text(&src));
        prop_assert_eq!(literal, Some(lit.as_str()));
    }

    /// A nested block comment swallows code lookalikes whole: the whole
    /// construct is exactly one comment token, closed at matching
    /// depth, whatever the nesting.
    #[test]
    fn nested_comments_swallow_code(seed in 0u64..u64::MAX) {
        let mut g = Gen(seed);
        let depth = 1 + g.below(4);
        let comment = block_comment(&mut g, depth);
        let src = format!("{comment} tail");
        let tokens = lexer::lex(&src);
        prop_assert!(tokens[0].kind.is_comment());
        prop_assert_eq!(tokens[0].text(&src), comment.as_str());
        prop_assert!(tokens
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text(&src) == "tail"));
    }
}

// ---------------------------------------------------------------------
// End to end: `#[cfg(test)]` bodies are never library code
// ---------------------------------------------------------------------

/// Random inter-item noise whose text mentions the panicking APIs —
/// none of it is code, so none of it may produce a finding.
fn noise(g: &mut Gen) -> &'static str {
    [
        "// x.unwrap() in a comment\n",
        "/* panic!(\"in a comment\") */\n",
        "/// ```\n/// x.unwrap();\n/// ```\n",
        "//! // cfva-lint: allow(L002) — doc text, not a suppression\n",
        "\n",
    ][g.below(5)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generates a library file whose only *library* violation is one
    /// `.unwrap()`, surrounded by `#[cfg(test)]` code, comments, doc
    /// examples and string literals full of lookalikes — and checks
    /// the whole pipeline (lex → test regions → suppressions → L002)
    /// flags exactly that line.
    #[test]
    fn cfg_test_bodies_are_never_library_code(seed in 0u64..u64::MAX) {
        let mut g = Gen(seed);
        let mut src = String::new();
        src.push_str(noise(&mut g));
        let test_module = format!(
            "{}#[cfg(test)]\nmod tests {{\n    #[test]\n    fn t() {{\n        Some(1u32).unwrap();\n        let v = [1, 2]; let i = 1; let _ = v[i + 1];\n    }}\n}}\n",
            if g.below(2) == 0 { "#[allow(dead_code)]\n" } else { "" },
        );
        let lib_fn = "pub fn lib_side(x: Option<u32>) -> u32 {\n    let s = \"y.unwrap()\"; let _ = s;\n    x.unwrap()\n}\n";
        if g.below(2) == 0 {
            src.push_str(&test_module);
            src.push_str(noise(&mut g));
            src.push_str(lib_fn);
        } else {
            src.push_str(lib_fn);
            src.push_str(noise(&mut g));
            src.push_str(&test_module);
        }

        let dir = std::env::temp_dir().join(format!(
            "cfva-lint-prop-{}-{seed}",
            std::process::id()
        ));
        let src_dir = dir.join("crates/cfva-core/src");
        std::fs::create_dir_all(&src_dir).expect("temp dir");
        std::fs::write(src_dir.join("generated.rs"), &src).expect("write fixture");
        let diags = cfva_lint::check_workspace(&dir).expect("lint generated file");
        std::fs::remove_dir_all(&dir).ok();

        let lib_unwrap_line = 1 + src[..src.find("\n    x.unwrap()").expect("lib unwrap present")]
            .bytes()
            .filter(|&b| b == b'\n')
            .count() as u32;
        prop_assert_eq!(diags.len(), 1);
        prop_assert_eq!(diags[0].code, "L002");
        prop_assert_eq!(diags[0].line, lib_unwrap_line + 1);
    }
}
