//! L000 fixture: malformed suppressions are themselves findings — and
//! suppress nothing, so the underlying L002s still fire.

pub fn missing_reason(x: Option<u32>) -> u32 {
    // cfva-lint: allow(L002)
    x.unwrap()
}

pub fn unknown_code(x: Option<u32>) -> u32 {
    // cfva-lint: allow(L999, reason = "no such lint")
    x.unwrap()
}
