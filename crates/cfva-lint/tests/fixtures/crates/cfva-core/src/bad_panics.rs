//! L002 fixture: panics and unchecked indexing in library code, plus a
//! properly documented allow that must stay silent.

pub fn first_or_die(v: &[u32]) -> u32 {
    v.first().copied().unwrap()
}

pub fn expect_some(x: Option<u32>) -> u32 {
    x.expect("always set")
}

pub fn explode() {
    panic!("boom");
}

pub fn later() {
    todo!()
}

pub fn offset(v: &[u32], i: usize) -> u32 {
    v[i + 1]
}

pub fn allowed(v: &[u32]) -> u32 {
    // cfva-lint: allow(L002, reason = "fixture: a well-formed allow keeps this silent")
    v.first().copied().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        Some(1u32).unwrap();
    }
}
