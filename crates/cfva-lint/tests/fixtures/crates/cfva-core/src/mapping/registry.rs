//! L004 fixture: `orphan-map` is registered but the hand-enumerated
//! equivalence suite never names it.

pub fn builtin() -> Vec<&'static str> {
    let names = vec!["good-map", "orphan-map"];
    names
}
