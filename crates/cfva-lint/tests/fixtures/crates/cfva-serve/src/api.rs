//! L004 fixture: `Request::Ghost` has a dispatch arm but no case in
//! the service equivalence suite.

pub enum Request {
    Measure { spec: String },
    Ghost,
}
