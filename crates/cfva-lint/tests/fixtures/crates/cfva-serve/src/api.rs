//! L004 fixture: `Request::Ghost` has a dispatch arm but no case in
//! the service equivalence suite; `Response::Phantom` and
//! `ServeError::Unseen` are response/error shapes the suite never
//! asserts on.

pub enum Request {
    Measure { spec: String },
    Ghost,
}

pub enum Response {
    Measured(u32),
    Phantom,
}

pub enum ServeError {
    Overloaded,
    Unseen,
}
