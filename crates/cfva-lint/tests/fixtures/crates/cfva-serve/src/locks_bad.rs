//! L001 fixture: the serving locks are leaves; holding two guards at
//! once is a violation, sequential acquisition (with `drop`) is not.

use std::sync::Mutex;

pub struct State {
    sched: Mutex<u32>,
    slot: Mutex<u8>,
}

impl State {
    pub fn nested(&self) -> u32 {
        let g = self.sched.lock();
        let h = self.slot.lock();
        *g + u32::from(*h)
    }

    pub fn sequential(&self) -> u32 {
        let g = self.sched.lock();
        drop(g);
        let h = self.slot.lock();
        u32::from(*h)
    }
}
