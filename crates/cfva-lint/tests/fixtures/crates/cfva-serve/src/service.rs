//! L004 fixture dispatch: both variants have arms here.

use super::api::Request;

pub fn dispatch(req: &Request) -> u32 {
    match req {
        Request::Measure { .. } => 1,
        Request::Ghost => 2,
    }
}
