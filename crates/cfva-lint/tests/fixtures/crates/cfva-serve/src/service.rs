//! L004 fixture dispatch: both variants have arms here.

use super::api::Request;

pub fn dispatch(req: &Request) -> u32 {
    match req {
        Request::Measure { .. } => 1,
        Request::Ghost => 2,
    }
}

/// L004 fixture stats: `queue_depth` reaches the suite,
/// `ghost_counter` never does.
pub struct ServiceStats {
    pub queue_depth: usize,
    pub ghost_counter: u64,
}
