//! L004 fixture suite: only `Request::Measure` is exercised.

fn covers_measure() {
    let _ = Request::Measure {
        spec: String::new(),
    };
}
