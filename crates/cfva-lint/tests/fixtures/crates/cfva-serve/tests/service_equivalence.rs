//! L004 fixture suite: only `Request::Measure`, `Response::Measured`
//! and `ServeError::Overloaded` are exercised.

fn covers_measure() {
    let _ = Request::Measure {
        spec: String::new(),
    };
    let _ = Response::Measured(1);
    let _ = ServeError::Overloaded;
}

fn reads_stats() {
    let queue_depth = 0usize;
    let _ = queue_depth;
}
