//! L004 fixture wire suite: only `Request::Measure`,
//! `Response::Measured` and `ServeError::Overloaded` round trip here —
//! `Ghost`, `Phantom` and `Unseen` must each be reported as never
//! reaching the wire codec suite.

fn round_trips_measure() {
    let _ = Request::Measure {
        spec: String::new(),
    };
    let _ = Response::Measured(1);
    let _ = ServeError::Overloaded;
}
