//! L005 fixture: missing `#![forbid(unsafe_code)]`, and a handle-type
//! producer without `#[must_use]` next to a covered one.

pub struct Ticket;

pub fn make_ticket() -> Ticket {
    Ticket
}

#[must_use = "covered producer"]
pub fn covered_ticket() -> Ticket {
    Ticket
}
