//! L003 fixture: wall-clock time, sleeps and ambient randomness in the
//! deterministic model crates.

use rand::Rng;
use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}

pub fn nap() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}
