//! L004 fixture suite: iterates `all_specs()`, so every builtin map is
//! covered here regardless of name.

fn covers_everything() {
    let specs = all_specs();
    let _ = specs;
}
