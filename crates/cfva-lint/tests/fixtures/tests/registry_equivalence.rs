//! L004 fixture suite: enumerates specs by hand and forgot
//! `orphan-map`.

fn covers_good_map_only() {
    let spec = "good-map:m=3";
    let _ = spec;
}
