//! The library-level twin of `cfva-lint check --fixtures`: the fixture
//! corpus must produce exactly the findings pinned in `expected.txt` —
//! no extras (false positives), no gaps (regressions).

use std::collections::BTreeSet;
use std::path::Path;

#[test]
fn fixtures_produce_exactly_the_expected_findings() {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let expected_text = std::fs::read_to_string(fixtures.join("expected.txt"))
        .expect("fixtures/expected.txt is readable");
    let expected: BTreeSet<String> = expected_text
        .lines()
        .map(str::trim_end)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(String::from)
        .collect();

    let actual: BTreeSet<String> = cfva_lint::check_workspace(&fixtures)
        .expect("fixture corpus lints without I/O errors")
        .iter()
        .map(ToString::to_string)
        .collect();

    let missing: Vec<_> = expected.difference(&actual).collect();
    let unexpected: Vec<_> = actual.difference(&expected).collect();
    assert!(
        missing.is_empty() && unexpected.is_empty(),
        "fixture drift\n  missing: {missing:#?}\n  unexpected: {unexpected:#?}"
    );

    // Every lint code must be demonstrated by at least one fixture —
    // a lint nobody can trip is a lint nobody trusts.
    for code in cfva_lint::lints::known_codes() {
        assert!(
            expected.iter().any(|l| l.contains(&format!(" {code} "))),
            "no fixture demonstrates {code}"
        );
    }
}
