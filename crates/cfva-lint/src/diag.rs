//! Machine-readable diagnostics: `file:line:col CODE message`.

use std::fmt;

/// One lint finding, anchored to a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path, unix-style separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// The lint code (`L001` … `L005`, `L000` for suppression errors).
    pub code: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Diagnostic {
    /// A diagnostic at an explicit position.
    pub fn new(
        file: impl Into<String>,
        line: u32,
        col: u32,
        code: &'static str,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            file: file.into(),
            line,
            col,
            code,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{} {} {}",
            self.file, self.line, self.col, self.code, self.message
        )
    }
}

/// Sorts diagnostics into the stable reporting order: by file, then
/// position, then code.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.code).cmp(&(b.file.as_str(), b.line, b.col, b.code))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_machine_readable_line() {
        let d = Diagnostic::new(
            "crates/x/src/lib.rs",
            12,
            5,
            "L002",
            "`.unwrap()` in library path",
        );
        assert_eq!(
            d.to_string(),
            "crates/x/src/lib.rs:12:5 L002 `.unwrap()` in library path"
        );
    }

    #[test]
    fn sort_orders_by_file_then_position() {
        let mut v = vec![
            Diagnostic::new("b.rs", 1, 1, "L002", "x"),
            Diagnostic::new("a.rs", 9, 1, "L003", "x"),
            Diagnostic::new("a.rs", 2, 7, "L001", "x"),
            Diagnostic::new("a.rs", 2, 3, "L005", "x"),
        ];
        sort(&mut v);
        let order: Vec<(&str, u32, u32)> =
            v.iter().map(|d| (d.file.as_str(), d.line, d.col)).collect();
        assert_eq!(
            order,
            vec![
                ("a.rs", 2, 3),
                ("a.rs", 2, 7),
                ("a.rs", 9, 1),
                ("b.rs", 1, 1)
            ]
        );
    }
}
