//! **L005 — crate hygiene: `forbid(unsafe_code)` and `#[must_use]`.**
//!
//! Two blanket rules with no judgement calls:
//!
//! * every crate root (`src/lib.rs`, `crates/*/src/lib.rs`) carries
//!   `#![forbid(unsafe_code)]` — the whole workspace is safe Rust, and
//!   `forbid` (unlike `deny`) cannot be overridden downstream;
//! * every `pub fn` returning one of the workspace's *handle types* —
//!   `Ticket` / `ServeTicket` (a pending result that is lost if
//!   dropped), `AccessStats` (a measurement someone paid simulation
//!   time for) or `AnalyticEstimate` — is `#[must_use]`. A `must_use`
//!   on the type covers plain returns but not `Option<Ticket<_>>` and
//!   friends, which is exactly how `try_submit` results get dropped;
//!   the attribute on the function closes that hole.

use super::{CodeTokens, Lint};
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::workspace::{Role, SourceFile, Workspace};

/// Return types whose producers must be `#[must_use]`.
const HANDLE_TYPES: &[&str] = &[
    "Ticket",
    "ServeTicket",
    "WireTicket",
    "AccessStats",
    "AnalyticEstimate",
];

pub struct Hygiene;

impl Lint for Hygiene {
    fn code(&self) -> &'static str {
        "L005"
    }

    fn description(&self) -> &'static str {
        "crate roots forbid unsafe_code; pub fns returning handle types are #[must_use]"
    }

    fn run(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        for file in &ws.files {
            if is_crate_root(&file.rel) && !has_forbid_unsafe(file) {
                diags.push(Diagnostic::new(
                    file.rel.clone(),
                    1,
                    1,
                    "L005",
                    "crate root is missing `#![forbid(unsafe_code)]`",
                ));
            }
            if file.role == Role::Lib {
                check_must_use(file, &mut diags);
            }
        }
        diags
    }
}

fn is_crate_root(rel: &str) -> bool {
    if rel == "src/lib.rs" {
        return true;
    }
    let parts: Vec<&str> = rel.split('/').collect();
    parts.len() == 4 && parts[0] == "crates" && parts[2] == "src" && parts[3] == "lib.rs"
}

fn has_forbid_unsafe(file: &SourceFile) -> bool {
    let code = CodeTokens::new(file);
    (0..code.len()).any(|k| {
        k + 3 < code.len()
            && code.is_ident(k, "forbid")
            && code.tok(k + 1).kind == TokenKind::Punct('(')
            && code.is_ident(k + 2, "unsafe_code")
            && code.tok(k + 3).kind == TokenKind::Punct(')')
    })
}

fn check_must_use(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    let code = CodeTokens::new(file);
    for k in 0..code.len() {
        if !code.is_ident(k, "pub") || code.in_test(k) {
            continue;
        }
        // Plain `pub` only — `pub(crate)` fns are internal plumbing.
        let mut f = k + 1;
        if f >= code.len() || code.tok(f).kind == TokenKind::Punct('(') {
            continue;
        }
        if !code.is_ident(f, "fn") {
            continue;
        }
        f += 1;
        if f >= code.len() || code.tok(f).kind != TokenKind::Ident {
            continue;
        }
        let name_k = f;
        let Some(ret) = return_type_range(&code, name_k) else {
            continue;
        };
        let handle = (ret.0..ret.1)
            .find_map(|j| HANDLE_TYPES.iter().find(|ty| code.is_ident(j, ty)).copied());
        let Some(handle) = handle else {
            continue;
        };
        if !preceding_attrs_have(&code, k, "must_use") {
            diags.push(code.diag_at(
                name_k,
                "L005",
                format!(
                    "`pub fn {}` returns `{handle}` but is not `#[must_use]`",
                    code.text(name_k)
                ),
            ));
        }
    }
}

/// The token range of the return type of the fn whose name is at
/// `name_k`: skips the generic parameter list (minding the `->` inside
/// `FnOnce() -> R` bounds), the parameter parens, then spans from `->`
/// to the body `{`, a `;`, or a `where` clause. `None` if the fn has
/// no return type.
fn return_type_range(code: &CodeTokens<'_>, name_k: usize) -> Option<(usize, usize)> {
    let mut j = name_k + 1;
    if j < code.len() && code.tok(j).kind == TokenKind::Punct('<') {
        let mut depth = 1i32;
        j += 1;
        while depth > 0 {
            if j >= code.len() {
                return None;
            }
            match code.tok(j).kind {
                TokenKind::Punct('<') => depth += 1,
                TokenKind::Punct('>') => {
                    // `->` inside an `Fn…() -> R` bound is not a closer.
                    let arrow = code.tok(j - 1).kind == TokenKind::Punct('-')
                        && code.tok(j - 1).end == code.tok(j).start;
                    if !arrow {
                        depth -= 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    if j >= code.len() || code.tok(j).kind != TokenKind::Punct('(') {
        return None;
    }
    let close = code.matching(j)?;
    let arrow_dash = close + 1;
    if arrow_dash + 1 >= code.len()
        || code.tok(arrow_dash).kind != TokenKind::Punct('-')
        || code.tok(arrow_dash + 1).kind != TokenKind::Punct('>')
    {
        return None;
    }
    let start = arrow_dash + 2;
    let mut end = start;
    while end < code.len() {
        match code.tok(end).kind {
            TokenKind::Punct('{') | TokenKind::Punct(';') => break,
            TokenKind::Ident if code.text(end) == "where" => break,
            _ => end += 1,
        }
    }
    Some((start, end))
}

/// Whether any `#[…]` attribute block directly above the token at `k`
/// contains the identifier `name`.
fn preceding_attrs_have(code: &CodeTokens<'_>, k: usize, name: &str) -> bool {
    let mut j = k;
    while j >= 1 {
        // Expect `… # [ attr… ] <current>` — walk over one attribute.
        if code.tok(j - 1).kind != TokenKind::Punct(']') {
            return false;
        }
        let mut depth = 0i32;
        let mut open = j - 1;
        loop {
            match code.tok(open).kind {
                TokenKind::Punct(']') => depth += 1,
                TokenKind::Punct('[') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if open == 0 {
                return false;
            }
            open -= 1;
        }
        if open == 0 || code.tok(open - 1).kind != TokenKind::Punct('#') {
            return false;
        }
        if (open + 1..j - 1).any(|m| code.is_ident(m, name)) {
            return true;
        }
        j = open - 1;
    }
    false
}
