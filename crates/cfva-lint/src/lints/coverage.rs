//! **L004 — registration is coverage.**
//!
//! Two registries in this repo silently grow: the mapping registry
//! (`Registry::builtin()`) and the service API (`enum Request`). Both
//! have paired exhaustiveness suites, and both have a failure mode
//! where a new entry compiles, ships, and is never exercised:
//!
//! * a map registered in `builtin()` that no equivalence suite names
//!   (the suites iterate `all_specs()` today — this lint keeps it that
//!   way, or forces an explicit mention if a suite ever enumerates by
//!   hand);
//! * a `Request` variant with no dispatch arm in `service.rs` (it
//!   would be caught by match exhaustiveness — unless dispatch grows a
//!   catch-all) or no case in the service equivalence suite;
//! * a `ServiceStats` field no test reads: struct fields have no
//!   exhaustiveness check at all, so an observability counter that is
//!   wired up but never asserted on rots silently.
//!
//! The lint cross-references the declaration sites against the suites
//! and reports each uncovered name at its registration, where the fix
//! (add the coverage) is decided.

use super::{CodeTokens, Lint};
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::workspace::{SourceFile, Workspace};

/// Where `Registry::builtin()` lives.
const REGISTRY: &str = "crates/cfva-core/src/mapping/registry.rs";
/// The suites every builtin map name must reach.
const MAP_SUITES: &[&str] = &["tests/engine_agreement.rs", "tests/registry_equivalence.rs"];
/// Where the service API enums are declared.
const API: &str = "crates/cfva-serve/src/api.rs";
/// Files every `Request` variant must appear in (dispatch + suite).
const REQUEST_SITES: &[&str] = &[
    "crates/cfva-serve/src/service.rs",
    "crates/cfva-serve/tests/service_equivalence.rs",
];
/// Files every `Response` and `ServeError` variant must appear in: the
/// equivalence suite is the service's behavioural contract, so a
/// response or error shape nobody asserts on is a shape nobody checked
/// (`Degraded` and `DeadlineExceeded` ship with recovery machinery
/// that only tests make real).
const OUTCOME_SITES: &[&str] = &["crates/cfva-serve/tests/service_equivalence.rs"];
/// Where `ServiceStats` is declared.
const SERVICE: &str = "crates/cfva-serve/src/service.rs";
/// Files every `ServiceStats` field must be read by: a stats field
/// nobody asserts on is a counter nobody checked.
const STATS_SITES: &[&str] = &["crates/cfva-serve/tests/service_equivalence.rs"];
/// Files every `Request`, `Response` and `ServeError` variant must
/// also reach now that the API crosses a socket: the wire codec
/// round-trip suite. A variant the codec suite never names is a
/// variant that can ship un-serializable (or silently lossy) — the
/// round trip is the wire's behavioural contract, exactly as the
/// equivalence suite is the service's.
const WIRE_SITES: &[&str] = &["crates/cfva-wire/tests/codec_roundtrip.rs"];

pub struct RegistrationIsCoverage;

impl Lint for RegistrationIsCoverage {
    fn code(&self) -> &'static str {
        "L004"
    }

    fn description(&self) -> &'static str {
        "every registered map name and Request variant reaches its equivalence suite"
    }

    fn run(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        check_map_names(ws, &mut diags);
        check_enum_variants(ws, "Request", REQUEST_SITES, &mut diags);
        check_enum_variants(ws, "Response", OUTCOME_SITES, &mut diags);
        check_enum_variants(ws, "ServeError", OUTCOME_SITES, &mut diags);
        check_enum_variants(ws, "Request", WIRE_SITES, &mut diags);
        check_enum_variants(ws, "Response", WIRE_SITES, &mut diags);
        check_enum_variants(ws, "ServeError", WIRE_SITES, &mut diags);
        check_struct_fields(ws, "ServiceStats", SERVICE, STATS_SITES, &mut diags);
        diags
    }
}

// ---------------------------------------------------------------------
// Builtin map names
// ---------------------------------------------------------------------

fn check_map_names(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    let Some(registry) = ws.file(REGISTRY) else {
        return;
    };
    let code = CodeTokens::new(registry);
    let names = builtin_names(&code);
    for suite_rel in MAP_SUITES {
        let Some(suite) = ws.file(suite_rel) else {
            continue;
        };
        if file_contains_ident(suite, "all_specs") {
            continue; // the suite iterates the registry — full coverage
        }
        for (name, k) in &names {
            if !file_mentions_map(suite, name) {
                diags.push(code.diag_at(
                    *k,
                    "L004",
                    format!(
                        "builtin map `{name}` is not exercised by {suite_rel} — add it \
                         (or iterate `all_specs()`)"
                    ),
                ));
            }
        }
    }
}

/// The map names registered in `fn builtin`: string literals inside its
/// body whose content is a bare `[a-z0-9-]+` name (coverage specs like
/// `"interleaved:m=3"` and message strings don't match).
fn builtin_names(code: &CodeTokens<'_>) -> Vec<(String, usize)> {
    let mut names = Vec::new();
    let Some((body_start, body_end)) = fn_body(code, "builtin") else {
        return names;
    };
    for k in body_start..body_end {
        if code.tok(k).kind != TokenKind::Str {
            continue;
        }
        let text = code.text(k);
        let content = &text[1..text.len() - 1];
        let is_name = !content.is_empty()
            && content
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-');
        if is_name {
            names.push((content.to_string(), k));
        }
    }
    names
}

/// The token range (exclusive of the braces) of `fn <name>`'s body.
fn fn_body(code: &CodeTokens<'_>, name: &str) -> Option<(usize, usize)> {
    for k in 0..code.len() {
        if k + 1 >= code.len() || !code.is_ident(k, "fn") || !code.is_ident(k + 1, name) {
            continue;
        }
        let mut j = k + 2;
        while j < code.len() && code.tok(j).kind != TokenKind::Punct('{') {
            j += 1;
        }
        let close = code.matching(j)?;
        return Some((j + 1, close));
    }
    None
}

fn file_contains_ident(file: &SourceFile, name: &str) -> bool {
    file.tokens
        .iter()
        .any(|t| t.kind == TokenKind::Ident && t.text(&file.text) == name)
}

/// Whether the suite names the map: a string literal equal to `name`
/// or a spec string starting `name:`.
fn file_mentions_map(file: &SourceFile, name: &str) -> bool {
    file.tokens.iter().any(|t| {
        if t.kind != TokenKind::Str {
            return false;
        }
        let text = t.text(&file.text);
        let content = &text[1..text.len() - 1];
        content == name || content.starts_with(&format!("{name}:"))
    })
}

// ---------------------------------------------------------------------
// Service API enum variants
// ---------------------------------------------------------------------

fn check_enum_variants(
    ws: &Workspace,
    enum_name: &str,
    sites: &[&str],
    diags: &mut Vec<Diagnostic>,
) {
    let Some(api) = ws.file(API) else {
        return;
    };
    let code = CodeTokens::new(api);
    let variants = enum_variants(&code, enum_name);
    for site_rel in sites {
        let Some(site) = ws.file(site_rel) else {
            continue;
        };
        for (variant, k) in &variants {
            if !file_mentions_variant(site, enum_name, variant) {
                diags.push(code.diag_at(
                    *k,
                    "L004",
                    format!("`{enum_name}::{variant}` never appears in {site_rel}"),
                ));
            }
        }
    }
}

/// The variant idents of `enum <name>`: identifiers at brace depth 1
/// of the enum body that directly follow `{`, `,`, or a `]` closing an
/// attribute.
fn enum_variants(code: &CodeTokens<'_>, name: &str) -> Vec<(String, usize)> {
    let mut variants = Vec::new();
    let mut start = None;
    for k in 0..code.len() {
        if k + 1 < code.len() && code.is_ident(k, "enum") && code.is_ident(k + 1, name) {
            let mut j = k + 2;
            while j < code.len() && code.tok(j).kind != TokenKind::Punct('{') {
                j += 1;
            }
            start = Some(j);
            break;
        }
    }
    let Some(open) = start else {
        return variants;
    };
    let Some(close) = code.matching(open) else {
        return variants;
    };
    let mut depth = 0i32;
    for k in open..close {
        match code.tok(k).kind {
            TokenKind::Punct('{') | TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct('}') | TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
            TokenKind::Ident if depth == 1 => {
                let starts_variant = matches!(
                    code.tok(k - 1).kind,
                    TokenKind::Punct('{') | TokenKind::Punct(',') | TokenKind::Punct(']')
                );
                if starts_variant {
                    variants.push((code.text(k).to_string(), k));
                }
            }
            _ => {}
        }
    }
    variants
}

// ---------------------------------------------------------------------
// Stats struct fields
// ---------------------------------------------------------------------

fn check_struct_fields(
    ws: &Workspace,
    struct_name: &str,
    decl_rel: &str,
    sites: &[&str],
    diags: &mut Vec<Diagnostic>,
) {
    let Some(decl) = ws.file(decl_rel) else {
        return;
    };
    let code = CodeTokens::new(decl);
    let fields = struct_fields(&code, struct_name);
    for site_rel in sites {
        let Some(site) = ws.file(site_rel) else {
            continue;
        };
        for (field, k) in &fields {
            if !file_contains_ident(site, field) {
                diags.push(code.diag_at(
                    *k,
                    "L004",
                    format!(
                        "`{struct_name}.{field}` is never read by {site_rel} — assert on the \
                         counter, or it can rot silently"
                    ),
                ));
            }
        }
    }
}

/// The field idents of `struct <name>`: identifiers at brace depth 1 of
/// the struct body directly followed by a single `:` (not a `::` path
/// separator).
fn struct_fields(code: &CodeTokens<'_>, name: &str) -> Vec<(String, usize)> {
    let mut fields = Vec::new();
    let mut start = None;
    for k in 0..code.len() {
        if k + 1 < code.len() && code.is_ident(k, "struct") && code.is_ident(k + 1, name) {
            let mut j = k + 2;
            while j < code.len() && code.tok(j).kind != TokenKind::Punct('{') {
                j += 1;
            }
            start = Some(j);
            break;
        }
    }
    let Some(open) = start else {
        return fields;
    };
    let Some(close) = code.matching(open) else {
        return fields;
    };
    let mut depth = 0i32;
    for k in open..close {
        match code.tok(k).kind {
            TokenKind::Punct('{') | TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct('}') | TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
            TokenKind::Ident if depth == 1 => {
                let is_field = k + 1 < close
                    && code.tok(k + 1).kind == TokenKind::Punct(':')
                    && !code.is_path_sep(k + 1);
                if is_field {
                    fields.push((code.text(k).to_string(), k));
                }
            }
            _ => {}
        }
    }
    fields
}

/// Whether the file contains the path `Enum::Variant`.
fn file_mentions_variant(file: &SourceFile, enum_name: &str, variant: &str) -> bool {
    let code = CodeTokens::new(file);
    (0..code.len()).any(|k| {
        code.is_ident(k, enum_name)
            && code.is_path_sep(k + 1)
            && k + 3 < code.len()
            && code.is_ident(k + 3, variant)
    })
}
