//! **L002 — no-panic library discipline.**
//!
//! Library code paths of `cfva-core`, `cfva-memsim` and `cfva-serve`
//! (not tests, benches, examples or binaries) must not contain:
//!
//! * `.unwrap()` or `.expect(…)`,
//! * `panic!`, `todo!`, `unimplemented!`,
//! * **computed** slice/array indexing without `.get` — an index
//!   expression containing arithmetic, calls, or any operator. A bare
//!   path (`buf[element]`, `arrival[req.element]`), a literal
//!   (`rows[0]`), a cast of a bare path (`seen[e as usize]`) and
//!   ranges over those (`&buf[..n]`, `q[a..b]`) are exempt: those
//!   indices restate a loop bound or a checked invariant, while the
//!   panics that reach production live in *derived* indices
//!   (`q[i + 1]`, `cols[m.trailing_zeros() as usize]`).
//!
//! Escape hatch: `// cfva-lint: allow(L002, reason = "…")` with a
//! mandatory, non-empty reason (e.g. lock-poisoning `expect`s in the
//! pool, where a poisoned scheduler lock is unrecoverable by design).

use super::{CodeTokens, Lint};
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::workspace::{Role, Workspace};

/// Crates whose `src/` trees carry the no-panic discipline.
const LIBRARY_CRATES: &[&str] = &["cfva-core", "cfva-memsim", "cfva-serve", "cfva-wire"];

pub struct NoPanic;

impl Lint for NoPanic {
    fn code(&self) -> &'static str {
        "L002"
    }

    fn description(&self) -> &'static str {
        "no unwrap/expect/panic!/todo! or computed slice index in library code paths"
    }

    fn run(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        for file in &ws.files {
            if file.role != Role::Lib || !LIBRARY_CRATES.contains(&file.crate_name.as_str()) {
                continue;
            }
            let code = CodeTokens::new(file);
            for k in 0..code.len() {
                if code.in_test(k) {
                    continue;
                }
                check_panicking_macro(&code, k, &mut diags);
                check_unwrap_expect(&code, k, &mut diags);
                check_index(&code, k, &mut diags);
            }
        }
        diags
    }
}

/// `panic!`, `todo!`, `unimplemented!` — an `!` directly after one of
/// the idents (assert-family macros are contract checks and stay
/// allowed).
fn check_panicking_macro(code: &CodeTokens<'_>, k: usize, diags: &mut Vec<Diagnostic>) {
    if code.tok(k).kind != TokenKind::Ident {
        return;
    }
    let name = code.text(k);
    if !matches!(name, "panic" | "todo" | "unimplemented") {
        return;
    }
    if k + 1 < code.len() && code.tok(k + 1).kind == TokenKind::Punct('!') {
        diags.push(code.diag_at(
            k,
            "L002",
            format!("`{name}!` in library path — return a typed error instead"),
        ));
    }
}

/// `.unwrap()` (exact, empty argument list — `unwrap_or*` is fine) and
/// `.expect(…)`.
fn check_unwrap_expect(code: &CodeTokens<'_>, k: usize, diags: &mut Vec<Diagnostic>) {
    if code.tok(k).kind != TokenKind::Ident || k == 0 {
        return;
    }
    if code.tok(k - 1).kind != TokenKind::Punct('.') {
        return;
    }
    let name = code.text(k);
    let call_open = k + 1;
    if call_open >= code.len() || code.tok(call_open).kind != TokenKind::Punct('(') {
        return;
    }
    match name {
        "unwrap" if code.tok(call_open + 1).kind == TokenKind::Punct(')') => {
            diags.push(code.diag_at(
                k,
                "L002",
                "`.unwrap()` in library path — return a typed error instead",
            ));
        }
        "expect" => {
            diags.push(code.diag_at(
                k,
                "L002",
                "`.expect(…)` in library path — return a typed error, or allow with a reason",
            ));
        }
        _ => {}
    }
}

/// Indexing with a computed index expression (see the module docs for
/// the exemption rules).
fn check_index(code: &CodeTokens<'_>, k: usize, diags: &mut Vec<Diagnostic>) {
    if code.tok(k).kind != TokenKind::Punct('[') || k == 0 {
        return;
    }
    // Only expression-position brackets index: the previous token must
    // be a (non-keyword) identifier, a closing bracket, `?`, or a
    // literal. `#[attr]`, `vec![…]`, array types/literals and slice
    // patterns all follow other tokens.
    let prev = code.tok(k - 1);
    let is_index = match prev.kind {
        TokenKind::Ident => !crate::lexer::is_keyword(code.text(k - 1)),
        TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('?') => true,
        TokenKind::Str | TokenKind::RawStr => true,
        _ => false,
    };
    if !is_index {
        return;
    }
    let Some(close) = code.matching(k) else {
        return;
    };
    if close == k + 1 {
        return; // `[]` — not an index expression
    }
    if !index_expr_is_simple(code, k + 1, close) {
        diags.push(code.diag_at(
            k,
            "L002",
            "computed slice index without `.get` in library path — \
             bound it or allow with the reason the index is in range",
        ));
    }
}

/// Whether the index expression in `(start..end)` (exclusive token
/// range between the brackets) is exempt: `simple`, or
/// `simple? .. simple?` where `simple` is a literal, a dotted/`::`
/// path, or a path cast (`path as usize`).
fn index_expr_is_simple(code: &CodeTokens<'_>, start: usize, end: usize) -> bool {
    // Split on the `..` range operator (two adjacent `.` puncts) at
    // top level; `..=` too.
    let mut parts: Vec<(usize, usize)> = Vec::new();
    let mut part_start = start;
    let mut j = start;
    while j < end {
        let adjacent_dots = j + 1 < end
            && code.tok(j).kind == TokenKind::Punct('.')
            && code.tok(j + 1).kind == TokenKind::Punct('.')
            && code.tok(j).end == code.tok(j + 1).start;
        if adjacent_dots {
            parts.push((part_start, j));
            j += 2;
            if j < end && code.tok(j).kind == TokenKind::Punct('=') {
                j += 1; // `..=`
            }
            part_start = j;
            continue;
        }
        j += 1;
    }
    parts.push((part_start, end));
    if parts.len() > 2 {
        return false;
    }
    parts.into_iter().all(|(s, e)| simple_operand(code, s, e))
}

/// `ε` | literal | path | `path as ident+` — where path is
/// `ident (("." | "::") ident)*` (keywords other than `self`/`as`
/// disqualify).
fn simple_operand(code: &CodeTokens<'_>, start: usize, end: usize) -> bool {
    if start == end {
        return true; // open range endpoint
    }
    // Single numeric literal.
    if end == start + 1 && code.tok(start).kind == TokenKind::Num {
        return true;
    }
    // Path, optionally followed by `as <type path>`.
    let mut j = start;
    let mut expect_ident = true;
    let mut seen_as = false;
    while j < end {
        let t = code.tok(j);
        match t.kind {
            TokenKind::Ident => {
                let text = code.text(j);
                if text == "as" {
                    if expect_ident || seen_as {
                        return false;
                    }
                    seen_as = true;
                    expect_ident = true;
                } else if crate::lexer::is_keyword(text) && text != "self" {
                    return false;
                } else {
                    if !expect_ident && !seen_as {
                        return false;
                    }
                    expect_ident = false;
                }
                j += 1;
            }
            TokenKind::Punct('.') if !seen_as => {
                if expect_ident {
                    return false;
                }
                expect_ident = true;
                j += 1;
            }
            TokenKind::Punct(':') if !seen_as && code.is_path_sep(j) => {
                if expect_ident {
                    return false;
                }
                expect_ident = true;
                j += 2;
            }
            _ => return false,
        }
    }
    !expect_ident
}
