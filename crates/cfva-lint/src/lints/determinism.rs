//! **L003 — determinism of the engine, planner and mapping layers.**
//!
//! `cfva-core` and `cfva-memsim` are the reproducibility core: the
//! same spec, access pattern and seed must produce bit-identical
//! plans, conflict counts and estimates on every run and every
//! machine. That property is what makes the equivalence suites and
//! the canonical result cache sound. Library code in those crates
//! must therefore not consult ambient nondeterminism:
//!
//! * `SystemTime::now()` / `Instant::now()` — wall-clock and monotonic
//!   time. Simulated time comes from the engine's own cycle counter.
//! * `std::thread::sleep` — scheduling-dependent timing.
//! * `rand::…` paths — ambient RNG entry points. Randomized estimators
//!   take an explicit `u64` seed and drive the crate's own
//!   deterministic generator.
//!
//! Benches, tests and binaries may time and randomize freely; the lint
//! scopes itself to library roles only.

use super::{CodeTokens, Lint};
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::workspace::{Role, Workspace};

/// The crates whose library paths must stay deterministic.
const DETERMINISTIC_CRATES: &[&str] = &["cfva-core", "cfva-memsim"];

pub struct Determinism;

impl Lint for Determinism {
    fn code(&self) -> &'static str {
        "L003"
    }

    fn description(&self) -> &'static str {
        "no wall-clock, sleep, or ambient rand in engine/planner/mapping code"
    }

    fn run(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        for file in &ws.files {
            if file.role != Role::Lib || !DETERMINISTIC_CRATES.contains(&file.crate_name.as_str()) {
                continue;
            }
            let code = CodeTokens::new(file);
            for k in 0..code.len() {
                if code.tok(k).kind != TokenKind::Ident || code.in_test(k) {
                    continue;
                }
                check_token(&code, k, &mut diags);
            }
        }
        diags
    }
}

fn check_token(code: &CodeTokens<'_>, k: usize, diags: &mut Vec<Diagnostic>) {
    let text = code.text(k);
    // `<Head>::tail` — flag at the head for clear positions.
    let tail_after = |head_k: usize| -> Option<&str> {
        let sep = head_k + 1;
        if sep + 2 < code.len()
            && code.is_path_sep(sep)
            && code.tok(sep + 2).kind == TokenKind::Ident
        {
            Some(code.text(sep + 2))
        } else {
            None
        }
    };
    match text {
        "SystemTime" | "Instant" if tail_after(k) == Some("now") => {
            diags.push(code.diag_at(
                k,
                "L003",
                format!(
                    "`{text}::now()` in deterministic code — derive time from the \
                     simulated cycle counter"
                ),
            ));
        }
        "thread" if tail_after(k) == Some("sleep") => {
            diags.push(code.diag_at(
                k,
                "L003",
                "`thread::sleep` in deterministic code — timing must not depend on \
                 the scheduler",
            ));
        }
        "rand" => {
            // Any `rand::…` path — imports included: an ambient-RNG
            // dependency is the violation, not just the call site.
            let sep = k + 1;
            if code.is_path_sep(sep) {
                diags.push(code.diag_at(
                    k,
                    "L003",
                    "ambient `rand::` in deterministic code — take an explicit `u64` \
                     seed and use the crate's own generator",
                ));
            }
        }
        _ => {}
    }
}
