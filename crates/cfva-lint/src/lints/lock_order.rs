//! **L001 — lock acquisition order in `cfva-serve`.**
//!
//! The serving layer's concurrency design keeps every lock a **leaf**:
//! a thread holds at most one of the serve locks at a time. The
//! scheduler mutex (`sched`), the per-ticket result slot (`slot`), the
//! worker-handle list (`handles`), the spec metadata map
//! (`spec_used_bits`) and the result-cache shards (`shards` /
//! `shard()`) must never nest in either direction — completion paths
//! resolve tickets *after* releasing the scheduler lock, and cache
//! population happens outside both. A nested acquisition is either a
//! latent deadlock (opposite orders on two threads) or an accidental
//! extension of a critical section; both are rejected here.
//!
//! The lint discovers the lock classes itself: every struct field or
//! provider function in `cfva-serve` whose type mentions `Mutex<…>`,
//! `ClassedMutex<…>` or `RwLock<…>` names a class. It then walks each
//! function, tracking live guards:
//!
//! * `let g = <recv>.lock()…;` (optionally through `.expect(…)` /
//!   `.unwrap()`) — the guard lives to the end of its block, or to an
//!   explicit `drop(g)`;
//! * a `.lock()` used inline in a larger expression — the temporary
//!   guard lives to the end of the statement.
//!
//! Acquiring any class while another guard is live is a violation,
//! unless the ordered pair appears in [`ALLOWED_NESTING`] — the
//! extension point if the design ever grows a genuine hierarchy.

use std::collections::HashMap;

use super::{CodeTokens, Lint};
use crate::diag::Diagnostic;
use crate::lexer::{self, TokenKind};
use crate::workspace::{Role, Workspace};

/// Ordered `(outer, inner)` pairs that are allowed to nest. Empty: the
/// current design is all-leaves. Adding a pair here documents a real
/// hierarchy decision and should come with a doc update in
/// `cfva-serve/src/locks.rs`.
const ALLOWED_NESTING: &[(&str, &str)] = &[];

/// The crates whose locks this lint governs: the serve substrate and
/// its wire front end, which reuses the same `ClassedMutex` classes
/// (`WireConns`, `WireIntern`) and so answers to the same leaf
/// discipline.
const LOCKED_CRATES: &[&str] = &["cfva-serve", "cfva-wire"];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LockKind {
    Mutex,
    RwLock,
}

pub struct LockOrder;

impl Lint for LockOrder {
    fn code(&self) -> &'static str {
        "L001"
    }

    fn description(&self) -> &'static str {
        "cfva-serve and cfva-wire locks are leaves: no two lock guards may be live at once"
    }

    fn run(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let serve_files: Vec<_> = ws
            .files
            .iter()
            .filter(|f| LOCKED_CRATES.contains(&f.crate_name.as_str()) && f.role == Role::Lib)
            .collect();

        // Pass 1: discover the lock classes across the whole crate, so
        // uses in one module see classes declared in another.
        let mut classes: HashMap<String, LockKind> = HashMap::new();
        for file in &serve_files {
            discover_classes(&CodeTokens::new(file), &mut classes);
        }

        // Pass 2: check guard liveness per file.
        let mut diags = Vec::new();
        for file in &serve_files {
            check_file(&CodeTokens::new(file), &classes, &mut diags);
        }
        diags
    }
}

/// Records `name → kind` for every field `name: …Mutex<…>` (or
/// `RwLock`) and every provider `fn name(…) -> …Mutex<…>`.
fn discover_classes(code: &CodeTokens<'_>, classes: &mut HashMap<String, LockKind>) {
    for k in 0..code.len() {
        if code.tok(k).kind != TokenKind::Ident {
            continue;
        }
        let kind = match code.text(k) {
            "Mutex" | "ClassedMutex" => LockKind::Mutex,
            "RwLock" => LockKind::RwLock,
            _ => continue,
        };
        if k + 1 >= code.len() || code.tok(k + 1).kind != TokenKind::Punct('<') {
            continue;
        }
        if let Some(name) = owner_of_type_mention(code, k) {
            classes.entry(name).or_insert(kind);
        }
    }
}

/// Walks backward from a `Mutex<`-ish mention at `k` to the field or
/// provider-fn name that owns the type: through wrapper idents
/// (`Arc<Mutex<…>>`), `&`, lifetimes and `::` paths, until a `:` (field
/// declaration) or a `->` (provider return type).
fn owner_of_type_mention(code: &CodeTokens<'_>, k: usize) -> Option<String> {
    let mut j = k.checked_sub(1)?;
    loop {
        match code.tok(j).kind {
            TokenKind::Ident
            | TokenKind::Lifetime
            | TokenKind::Punct('<')
            | TokenKind::Punct('&') => {}
            TokenKind::Punct(':') => {
                // `::` path segment — step over the pair and continue.
                let second_of_pair = j > 0
                    && code.tok(j - 1).kind == TokenKind::Punct(':')
                    && code.tok(j - 1).end == code.tok(j).start;
                if second_of_pair {
                    j -= 1;
                } else if code.tok(j - 1).kind == TokenKind::Ident {
                    // Plain `:` — the ident before it is the field name.
                    let name = code.text(j - 1);
                    if lexer::is_keyword(name) {
                        return None;
                    }
                    return Some(name.to_string());
                } else {
                    return None;
                }
            }
            TokenKind::Punct('>') => {
                // `->` — provider function. `fn name ( … ) -> type`.
                if code.tok(j - 1).kind != TokenKind::Punct('-') {
                    return None;
                }
                let close = j.checked_sub(2)?;
                if code.tok(close).kind != TokenKind::Punct(')') {
                    return None;
                }
                let open = matching_backward(code, close)?;
                let name_k = open.checked_sub(1)?;
                if code.tok(name_k).kind != TokenKind::Ident {
                    return None;
                }
                if !code.is_ident(name_k.checked_sub(1)?, "fn") {
                    return None;
                }
                return Some(code.text(name_k).to_string());
            }
            _ => return None,
        }
        j = j.checked_sub(1)?;
    }
}

/// The index of the `(` matching the `)` at `close`, scanning backward.
fn matching_backward(code: &CodeTokens<'_>, close: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = close;
    loop {
        match code.tok(j).kind {
            TokenKind::Punct(')') => depth += 1,
            TokenKind::Punct('(') => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
        j = j.checked_sub(1)?;
    }
}

/// One live guard while scanning a file.
struct Guard {
    /// The lock class held.
    class: String,
    /// Binding name for `drop(name)` release; `None` for temporaries.
    var: Option<String>,
    /// Brace depth the guard was created at — it dies when the scan
    /// leaves that depth.
    depth: i32,
    /// Temporaries die at the next `;` at their depth.
    to_stmt_end: bool,
}

fn check_file(
    code: &CodeTokens<'_>,
    classes: &HashMap<String, LockKind>,
    diags: &mut Vec<Diagnostic>,
) {
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i32;
    let mut stmt_start = 0usize; // index of the current statement's first token

    for k in 0..code.len() {
        match code.tok(k).kind {
            TokenKind::Punct('{') => {
                depth += 1;
                stmt_start = k + 1;
                continue;
            }
            TokenKind::Punct('}') => {
                depth -= 1;
                guards.retain(|g| g.depth <= depth);
                stmt_start = k + 1;
                continue;
            }
            TokenKind::Punct(';') => {
                guards.retain(|g| !(g.to_stmt_end && g.depth == depth));
                stmt_start = k + 1;
                continue;
            }
            _ => {}
        }

        // `drop(name)` releases a named guard early.
        if code.is_ident(k, "drop")
            && k + 3 < code.len()
            && code.tok(k + 1).kind == TokenKind::Punct('(')
            && code.tok(k + 2).kind == TokenKind::Ident
            && code.tok(k + 3).kind == TokenKind::Punct(')')
        {
            let dropped = code.text(k + 2).to_string();
            guards.retain(|g| g.var.as_deref() != Some(dropped.as_str()));
            continue;
        }

        // An acquisition: `<recv>.lock()` / `.read()` / `.write()`
        // where the receiver's final segment names a discovered class
        // of the matching kind.
        if code.tok(k).kind != TokenKind::Ident {
            continue;
        }
        let method = code.text(k);
        let wants = match method {
            "lock" => LockKind::Mutex,
            "read" | "write" => LockKind::RwLock,
            _ => continue,
        };
        if k + 2 >= code.len()
            || code.tok(k + 1).kind != TokenKind::Punct('(')
            || code.tok(k + 2).kind != TokenKind::Punct(')')
        {
            continue;
        }
        let Some(recv) = code.receiver_tail(k) else {
            continue;
        };
        if classes.get(recv) != Some(&wants) {
            continue;
        }
        let class = recv.to_string();

        for held in &guards {
            if ALLOWED_NESTING.contains(&(held.class.as_str(), class.as_str())) {
                continue;
            }
            diags.push(code.diag_at(
                k,
                "L001",
                format!(
                    "lock `{class}` acquired while `{}` is held — cfva-serve locks are \
                     leaves and must not nest",
                    held.class
                ),
            ));
        }

        // Classify the new guard's lifetime.
        let bound_var = let_binding_of(code, stmt_start, k);
        let is_let_guard = bound_var.is_some() && expr_ends_at_lock(code, k + 2);
        guards.push(Guard {
            class,
            var: if is_let_guard { bound_var } else { None },
            depth,
            to_stmt_end: !is_let_guard,
        });
    }
}

/// If the statement starting at `stmt_start` is `let [mut] name = …`
/// and the token at `k` lies in its initializer, the binding name.
fn let_binding_of(code: &CodeTokens<'_>, stmt_start: usize, k: usize) -> Option<String> {
    if stmt_start >= k || !code.is_ident(stmt_start, "let") {
        return None;
    }
    let mut n = stmt_start + 1;
    if code.is_ident(n, "mut") {
        n += 1;
    }
    if code.tok(n).kind != TokenKind::Ident {
        return None;
    }
    let name = code.text(n).to_string();
    if code.tok(n + 1).kind != TokenKind::Punct('=') {
        return None;
    }
    Some(name)
}

/// Whether the expression effectively ends at the `.lock()` call whose
/// closing `)` is at `close` — directly, or through `.expect("…")` /
/// `.unwrap()` — so the whole statement binds the guard.
fn expr_ends_at_lock(code: &CodeTokens<'_>, close: usize) -> bool {
    let mut j = close + 1;
    loop {
        if j >= code.len() {
            return false;
        }
        match code.tok(j).kind {
            TokenKind::Punct(';') => return true,
            TokenKind::Punct('.') => {
                let name_k = j + 1;
                if code.is_ident(name_k, "expect") || code.is_ident(name_k, "unwrap") {
                    let Some(open) = name_k.checked_add(1) else {
                        return false;
                    };
                    if code.tok(open).kind != TokenKind::Punct('(') {
                        return false;
                    }
                    let Some(call_close) = code.matching(open) else {
                        return false;
                    };
                    j = call_close + 1;
                } else {
                    return false;
                }
            }
            _ => return false,
        }
    }
}
