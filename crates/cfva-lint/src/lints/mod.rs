//! The lint registry and the token-stream helpers lints share.
//!
//! Each lint is a [`Lint`] implementation registered in [`all`]; the
//! driver runs every lint over the loaded [`Workspace`], filters the
//! findings through the per-file suppressions, and reports the rest.
//! Adding a lint is: one module, one `Lint` impl, one line in [`all`],
//! one fixture file plus its `expected.txt` lines.

use crate::diag::Diagnostic;
use crate::lexer::{Token, TokenKind};
use crate::workspace::{SourceFile, Workspace};

mod coverage;
mod determinism;
mod hygiene;
mod lock_order;
mod no_panic;

/// One registered lint: a code, a one-line description, and a pass
/// over the workspace.
pub trait Lint {
    /// The diagnostic code (`L001` …).
    fn code(&self) -> &'static str;
    /// One line for `cfva-lint lints` and the README table.
    fn description(&self) -> &'static str;
    /// Runs the lint, returning raw (unsuppressed) findings.
    fn run(&self, ws: &Workspace) -> Vec<Diagnostic>;
}

/// Every registered lint, in code order.
pub fn all() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(lock_order::LockOrder),
        Box::new(no_panic::NoPanic),
        Box::new(determinism::Determinism),
        Box::new(coverage::RegistrationIsCoverage),
        Box::new(hygiene::Hygiene),
    ]
}

/// The registered codes, plus `L000` (suppression errors), for
/// validating `allow(...)` comments.
pub fn known_codes() -> Vec<&'static str> {
    let mut codes = vec!["L000"];
    codes.extend(all().iter().map(|l| l.code()));
    codes
}

/// Runs every lint over `ws` and applies the inline suppressions.
/// Suppression diagnostics (`L000`) are never suppressible.
pub fn run_all(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags: Vec<Diagnostic> = ws.suppression_diags.clone();
    for lint in all() {
        for d in lint.run(ws) {
            let suppressed = ws
                .file(&d.file)
                .is_some_and(|f| f.suppressions.is_allowed(d.line, d.code));
            if !suppressed {
                diags.push(d);
            }
        }
    }
    crate::diag::sort(&mut diags);
    diags
}

// ---------------------------------------------------------------------
// Shared token-stream helpers
// ---------------------------------------------------------------------

/// A cursor over one file's significant tokens: `idx[k]` indexes into
/// `file.tokens`.
pub(crate) struct CodeTokens<'f> {
    pub file: &'f SourceFile,
    pub idx: Vec<usize>,
}

impl<'f> CodeTokens<'f> {
    pub fn new(file: &'f SourceFile) -> Self {
        CodeTokens {
            idx: file.code_token_indices(),
            file,
        }
    }

    pub fn len(&self) -> usize {
        self.idx.len()
    }

    /// The `k`-th significant token.
    pub fn tok(&self, k: usize) -> &Token {
        &self.file.tokens[self.idx[k]]
    }

    /// The `k`-th significant token's text.
    pub fn text(&self, k: usize) -> &str {
        self.tok(k).text(&self.file.text)
    }

    /// Whether the `k`-th token is the identifier `name`.
    pub fn is_ident(&self, k: usize, name: &str) -> bool {
        self.tok(k).kind == TokenKind::Ident && self.text(k) == name
    }

    /// Whether token `k` starts a `::` pair (two adjacent `:` puncts).
    pub fn is_path_sep(&self, k: usize) -> bool {
        k + 1 < self.len()
            && self.tok(k).kind == TokenKind::Punct(':')
            && self.tok(k + 1).kind == TokenKind::Punct(':')
            && self.tok(k).end == self.tok(k + 1).start
    }

    /// Finds the matching closer for the opener at `k` (`(`/`[`/`{`),
    /// returning its index.
    pub fn matching(&self, k: usize) -> Option<usize> {
        let (open, close) = match self.tok(k).kind {
            TokenKind::Punct('(') => ('(', ')'),
            TokenKind::Punct('[') => ('[', ']'),
            TokenKind::Punct('{') => ('{', '}'),
            _ => return None,
        };
        let mut depth = 0i32;
        for j in k..self.len() {
            match self.tok(j).kind {
                TokenKind::Punct(c) if c == open => depth += 1,
                TokenKind::Punct(c) if c == close => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(j);
                    }
                }
                _ => {}
            }
        }
        None
    }

    /// A diagnostic anchored at token `k`.
    pub fn diag_at(&self, k: usize, code: &'static str, message: impl Into<String>) -> Diagnostic {
        let t = self.tok(k);
        Diagnostic::new(self.file.rel.clone(), t.line, t.col, code, message)
    }

    /// Whether token `k` lies inside a test region.
    pub fn in_test(&self, k: usize) -> bool {
        self.file.in_test_region(self.tok(k).start)
    }

    /// For a method call `<recv>.name(…)` whose method-name identifier
    /// is at `k`, resolves the receiver's **final segment**: the field
    /// or variable name (`self.sched.lock()` → `sched`), the provider
    /// function (`self.shard(key).lock()` → `shard`), or the indexed
    /// collection (`self.shards[i].lock()` → `shards`).
    pub fn receiver_tail(&self, k: usize) -> Option<&str> {
        if k < 2 || self.tok(k - 1).kind != TokenKind::Punct('.') {
            return None;
        }
        let mut p = k - 2;
        loop {
            match self.tok(p).kind {
                TokenKind::Ident => return Some(self.text(p)),
                TokenKind::Punct(')') | TokenKind::Punct(']') => {
                    // Skip the balanced group backward, then resolve
                    // the identifier in front of it.
                    let (open, close) = if self.tok(p).kind == TokenKind::Punct(')') {
                        ('(', ')')
                    } else {
                        ('[', ']')
                    };
                    let mut depth = 0i32;
                    loop {
                        match self.tok(p).kind {
                            TokenKind::Punct(c) if c == close => depth += 1,
                            TokenKind::Punct(c) if c == open => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        if p == 0 {
                            return None;
                        }
                        p -= 1;
                    }
                    if p == 0 {
                        return None;
                    }
                    p -= 1;
                }
                _ => return None,
            }
        }
    }
}
