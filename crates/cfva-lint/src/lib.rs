//! `cfva-lint` — the workspace's own static-analysis pass.
//!
//! `rustc` and clippy enforce language-level invariants; this crate
//! enforces the *repo-specific* ones — the rules this codebase's
//! correctness argument actually leans on, written down as checks
//! instead of review lore:
//!
//! | code | invariant |
//! |------|-----------|
//! | L001 | `cfva-serve` locks are **leaves**: no two lock guards live at once |
//! | L002 | library paths don't panic: no `unwrap`/`expect`/`panic!`/computed index |
//! | L003 | engine/planner/mapping code is deterministic: no wall-clock, sleep, or ambient rand |
//! | L004 | registration is coverage: builtin maps and `Request` variants reach their suites |
//! | L005 | crate roots `forbid(unsafe_code)`; handle-returning `pub fn`s are `#[must_use]` |
//!
//! (`L000` reports malformed suppression comments and is itself
//! unsuppressible.)
//!
//! # The lock hierarchy (L001)
//!
//! The serving layer's locks — scheduler (`sched`), ticket result slot
//! (`slot`), worker handles (`handles`), spec metadata
//! (`spec_used_bits`), result-cache shards (`shard`/`shards`) — form a
//! deliberately *flat* hierarchy: every lock is a leaf, and holding
//! two at once is a bug by definition. Completion goes through
//! `Completer` after the scheduler lock is released; cache population
//! happens outside both. The static check lives in
//! [`lints::lock_order` (L001)](lints); the matching dynamic check is
//! `cfva-serve`'s debug-build lock-class stack, which panics on the
//! same inversion at runtime.
//!
//! # Suppressions
//!
//! A finding is silenced in place with a mandatory reason:
//!
//! ```text
//! let g = self.sched.lock().expect("poisoned"); // cfva-lint: allow(L002, reason = "poisoning is unrecoverable")
//! ```
//!
//! See [`suppress`] for the grammar, and the README's "Static
//! analysis" section for the workflow.
//!
//! # Design
//!
//! The front end is a hand-rolled lossless lexer ([`lexer`]) — no
//! `syn`, no dependencies — because every lint here needs only token
//! streams plus light structure (brace depth, attribute blocks, test
//! regions), and a lexer that *never* misreads strings, nested block
//! comments or raw-string fences is both sufficient and fast. Each
//! lint is a [`lints::Lint`] implementation over a pre-lexed
//! [`workspace::Workspace`]; fixtures under `tests/fixtures/` pin the
//! expected findings for every lint and for the suppression machinery.

#![forbid(unsafe_code)]

pub mod diag;
pub mod lexer;
pub mod lints;
pub mod suppress;
pub mod workspace;

use std::path::Path;

use diag::Diagnostic;

/// Loads the workspace rooted at `root` and runs every registered
/// lint, returning the surviving (unsuppressed) diagnostics in
/// reporting order.
pub fn check_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let codes = lints::known_codes();
    let ws = workspace::load(root, &codes)?;
    Ok(lints::run_all(&ws))
}
