//! The `cfva-lint` command-line driver.
//!
//! ```text
//! cfva-lint check                 # lint the workspace rooted at cwd; exit 1 on findings
//! cfva-lint check --root PATH     # lint an explicit root
//! cfva-lint check --fixtures      # self-test: lint tests/fixtures and require the
//!                                 # findings to match expected.txt exactly
//! cfva-lint lints                 # list the registered lints
//! ```

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Where the self-test corpus lives, relative to the workspace root.
const FIXTURES_DIR: &str = "crates/cfva-lint/tests/fixtures";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("check") => {
            let mut fixtures = false;
            let mut root = PathBuf::from(".");
            loop {
                match it.next() {
                    Some("--fixtures") => fixtures = true,
                    Some("--root") => match it.next() {
                        Some(p) => root = PathBuf::from(p),
                        None => return usage("--root needs a path"),
                    },
                    Some(other) => return usage(&format!("unknown argument `{other}`")),
                    None => break,
                }
            }
            if fixtures {
                check_fixtures(&root)
            } else {
                check(&root)
            }
        }
        Some("lints") => {
            for lint in cfva_lint::lints::all() {
                println!("{}  {}", lint.code(), lint.description());
            }
            ExitCode::SUCCESS
        }
        _ => usage("expected a subcommand: `check` or `lints`"),
    }
}

fn usage(why: &str) -> ExitCode {
    eprintln!("cfva-lint: {why}");
    eprintln!("usage: cfva-lint check [--fixtures] [--root PATH] | cfva-lint lints");
    ExitCode::from(2)
}

fn check(root: &Path) -> ExitCode {
    match cfva_lint::check_workspace(root) {
        Ok(diags) if diags.is_empty() => {
            eprintln!("cfva-lint: workspace clean");
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            eprintln!("cfva-lint: {} violation(s)", diags.len());
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("cfva-lint: {err}");
            ExitCode::from(2)
        }
    }
}

/// Self-test: the fixture corpus must produce *exactly* the findings
/// pinned in `expected.txt` — no more (false positives), no fewer
/// (regressions). Blank lines and `#` comments in `expected.txt` are
/// ignored.
fn check_fixtures(root: &Path) -> ExitCode {
    let fixtures = root.join(FIXTURES_DIR);
    let expected_path = fixtures.join("expected.txt");
    let expected = match std::fs::read_to_string(&expected_path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("cfva-lint: reading {}: {err}", expected_path.display());
            return ExitCode::from(2);
        }
    };
    let expected: Vec<&str> = expected
        .lines()
        .map(str::trim_end)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    let actual = match cfva_lint::check_workspace(&fixtures) {
        Ok(diags) => diags.iter().map(ToString::to_string).collect::<Vec<_>>(),
        Err(err) => {
            eprintln!("cfva-lint: {err}");
            return ExitCode::from(2);
        }
    };
    let mut ok = true;
    for line in &expected {
        if !actual.iter().any(|a| a == line) {
            eprintln!("missing expected finding: {line}");
            ok = false;
        }
    }
    for line in &actual {
        if !expected.iter().any(|e| e == line) {
            eprintln!("unexpected finding: {line}");
            ok = false;
        }
    }
    if ok {
        eprintln!(
            "cfva-lint: fixtures produce the expected {} finding(s)",
            expected.len()
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
