//! Inline suppression parsing: the `allow(CODE, reason = "…")` grammar.
//!
//! A violation is silenced by a comment of the form
//!
//! ```text
//! // cfva-lint: allow(L002, reason = "poisoning is unrecoverable by design")
//! ```
//!
//! either **trailing** on the offending line or **standalone on the
//! line(s) immediately above** it (standalone allows apply to the next
//! line that contains code, so several can stack above one statement).
//! The reason is mandatory and must be non-empty: a suppression is a
//! reviewed decision, and the grammar forces the review to be written
//! down. A malformed allow — missing reason, unknown code, bad syntax —
//! is itself a diagnostic (code `L000`), so typos cannot silently
//! disable a lint.

use crate::diag::Diagnostic;
use crate::lexer::{Token, TokenKind};

/// The suppressions of one file: `(line, code)` pairs meaning "lint
/// `code` is allowed on `line`".
#[derive(Debug, Default)]
pub struct Suppressions {
    allowed: Vec<(u32, String)>,
}

impl Suppressions {
    /// Whether `code` is suppressed at `line`.
    pub fn is_allowed(&self, line: u32, code: &str) -> bool {
        self.allowed.iter().any(|(l, c)| *l == line && c == code)
    }
}

/// The marker every suppression comment starts with (after `//`).
const MARKER: &str = "cfva-lint:";

/// Parses the suppression comments of one lexed file. `known_codes`
/// are the registered lint codes; allowing an unknown code is an
/// `L000` diagnostic. Returns the suppressions plus any `L000`
/// diagnostics for malformed allows.
pub fn parse(
    file: &str,
    source: &str,
    tokens: &[Token],
    known_codes: &[&'static str],
) -> (Suppressions, Vec<Diagnostic>) {
    let mut sup = Suppressions::default();
    let mut diags = Vec::new();

    // Lines that contain at least one code (non-trivia) token, for
    // resolving standalone allows to "the next line with code".
    let code_lines: Vec<u32> = {
        let mut lines: Vec<u32> = tokens
            .iter()
            .filter(|t| !t.kind.is_trivia())
            .map(|t| t.line)
            .collect();
        lines.dedup();
        lines
    };

    for (i, tok) in tokens.iter().enumerate() {
        if !matches!(tok.kind, TokenKind::LineComment { .. }) {
            continue;
        }
        let body = tok
            .text(source)
            .trim_start_matches('/')
            .trim_start_matches('!')
            .trim();
        let Some(rest) = body.strip_prefix(MARKER) else {
            continue;
        };
        let trailing = tokens[..i]
            .iter()
            .any(|t| t.line == tok.line && !t.kind.is_trivia());
        match parse_allow(rest.trim()) {
            Ok((code, _reason)) => {
                if !known_codes.contains(&code.as_str()) {
                    diags.push(Diagnostic::new(
                        file,
                        tok.line,
                        tok.col,
                        "L000",
                        format!("allow names unknown lint code `{code}`"),
                    ));
                    continue;
                }
                let target = if trailing {
                    Some(tok.line)
                } else {
                    // Standalone: the next line below this comment that
                    // contains code.
                    code_lines.iter().copied().find(|&l| l > tok.line)
                };
                match target {
                    Some(line) => sup.allowed.push((line, code)),
                    None => diags.push(Diagnostic::new(
                        file,
                        tok.line,
                        tok.col,
                        "L000",
                        "allow has no following code line to apply to".to_string(),
                    )),
                }
            }
            Err(why) => diags.push(Diagnostic::new(
                file,
                tok.line,
                tok.col,
                "L000",
                format!("malformed cfva-lint comment: {why}"),
            )),
        }
    }
    (sup, diags)
}

/// Parses `allow(CODE, reason = "…")`, returning `(code, reason)`.
fn parse_allow(s: &str) -> Result<(String, String), String> {
    let Some(inner) = s.strip_prefix("allow") else {
        return Err(format!(
            "expected `allow(CODE, reason = \"…\")`, found `{s}`"
        ));
    };
    let inner = inner.trim_start();
    let Some(inner) = inner.strip_prefix('(') else {
        return Err("expected `(` after `allow`".to_string());
    };
    let Some(inner) = inner.strip_suffix(')') else {
        return Err("missing closing `)`".to_string());
    };
    let Some((code, rest)) = inner.split_once(',') else {
        return Err("missing `, reason = \"…\"` (a reason is mandatory)".to_string());
    };
    let code = code.trim();
    if code.is_empty() || !code.chars().all(|c| c.is_ascii_alphanumeric()) {
        return Err(format!("`{code}` is not a lint code"));
    }
    let rest = rest.trim();
    let Some(value) = rest.strip_prefix("reason") else {
        return Err("expected `reason = \"…\"` after the code".to_string());
    };
    let value = value.trim_start();
    let Some(value) = value.strip_prefix('=') else {
        return Err("expected `=` after `reason`".to_string());
    };
    let value = value.trim();
    let reason = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| "reason must be a double-quoted string".to_string())?;
    if reason.trim().is_empty() {
        return Err("reason must not be empty".to_string());
    }
    Ok((code.to_string(), reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parsed(src: &str) -> (Suppressions, Vec<Diagnostic>) {
        let toks = lex(src);
        parse(
            "f.rs",
            src,
            &toks,
            &["L001", "L002", "L003", "L004", "L005"],
        )
    }

    #[test]
    fn trailing_allow_applies_to_its_own_line() {
        let src = "let x = v.unwrap(); // cfva-lint: allow(L002, reason = \"test fixture\")\n";
        let (sup, diags) = parsed(src);
        assert!(diags.is_empty(), "{diags:?}");
        assert!(sup.is_allowed(1, "L002"));
        assert!(!sup.is_allowed(2, "L002"));
        assert!(!sup.is_allowed(1, "L003"));
    }

    #[test]
    fn standalone_allow_applies_to_next_code_line() {
        let src = "\n// cfva-lint: allow(L003, reason = \"bench-only timing\")\n// another comment\nlet t = now();\n";
        let (sup, diags) = parsed(src);
        assert!(diags.is_empty(), "{diags:?}");
        assert!(sup.is_allowed(4, "L003"));
        assert!(!sup.is_allowed(2, "L003"));
    }

    #[test]
    fn stacked_standalone_allows_share_a_target() {
        let src = "// cfva-lint: allow(L002, reason = \"a\")\n// cfva-lint: allow(L003, reason = \"b\")\ncall();\n";
        let (sup, diags) = parsed(src);
        assert!(diags.is_empty());
        assert!(sup.is_allowed(3, "L002"));
        assert!(sup.is_allowed(3, "L003"));
    }

    #[test]
    fn missing_reason_is_l000() {
        let (sup, diags) = parsed("x(); // cfva-lint: allow(L002)\n");
        assert!(!sup.is_allowed(1, "L002"));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "L000");
        assert!(diags[0].message.contains("reason"), "{}", diags[0].message);
    }

    #[test]
    fn empty_reason_is_l000() {
        let (_, diags) = parsed("x(); // cfva-lint: allow(L002, reason = \"  \")\n");
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("empty"));
    }

    #[test]
    fn unknown_code_is_l000() {
        let (_, diags) = parsed("x(); // cfva-lint: allow(L099, reason = \"nope\")\n");
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("unknown lint code"));
    }

    #[test]
    fn allow_inside_string_literal_is_ignored() {
        let src = "let s = \"// cfva-lint: allow(L002)\";\n";
        let (sup, diags) = parsed(src);
        assert!(diags.is_empty());
        assert!(!sup.is_allowed(1, "L002"));
    }

    #[test]
    fn dangling_allow_at_eof_is_l000() {
        let (_, diags) = parsed("// cfva-lint: allow(L002, reason = \"dangling\")\n");
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("no following code line"));
    }
}
