//! Workspace discovery: walk the source tree, classify every Rust
//! file, and precompute the facts all lints share (token stream,
//! test regions, suppressions).

use std::path::{Path, PathBuf};

use crate::diag::Diagnostic;
use crate::lexer::{self, Token, TokenKind};
use crate::suppress::{self, Suppressions};

/// What kind of target a source file belongs to — lints scope
/// themselves by role (library discipline does not apply to tests or
/// benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Library code under `src/` — the lints' main subject.
    Lib,
    /// Integration tests (`tests/` directories).
    Test,
    /// Criterion benches (`benches/` directories).
    Bench,
    /// Examples (`examples/` directories).
    Example,
    /// Binaries (`src/bin/`).
    Bin,
}

/// One lexed workspace source file with its precomputed lint facts.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    /// The owning crate (`cfva-core`, …; the umbrella crate is `cfva`).
    pub crate_name: String,
    /// Target classification.
    pub role: Role,
    /// File contents.
    pub text: String,
    /// Lossless token stream of `text`.
    pub tokens: Vec<Token>,
    /// Byte ranges covered by `#[cfg(test)]` / `#[test]` items.
    test_regions: Vec<(usize, usize)>,
    /// Parsed `cfva-lint: allow(…)` suppressions.
    pub suppressions: Suppressions,
}

impl SourceFile {
    /// Whether the byte offset lies inside a `#[cfg(test)]` module or
    /// `#[test]` function — library lints skip those regions.
    pub fn in_test_region(&self, offset: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(start, end)| offset >= start && offset < end)
    }

    /// The significant (non-trivia) token indices, in order — the
    /// stream most lints scan.
    pub fn code_token_indices(&self) -> Vec<usize> {
        self.tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.kind.is_trivia())
            .map(|(i, _)| i)
            .collect()
    }
}

/// The lint subject: every non-vendored Rust source in the workspace.
#[derive(Debug)]
pub struct Workspace {
    /// The workspace root the relative paths hang off.
    pub root: PathBuf,
    /// All discovered files, sorted by relative path.
    pub files: Vec<SourceFile>,
    /// `L000` diagnostics from malformed suppression comments.
    pub suppression_diags: Vec<Diagnostic>,
}

impl Workspace {
    /// The file at `rel`, if the walk found it.
    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }
}

/// Directory names the walk never descends into.
const SKIP_DIRS: &[&str] = &["vendor", "target", ".git", ".github", "fixtures"];

/// Walks `root` and loads every `.rs` file outside `vendor/`,
/// `target/` and fixture corpora. `known_codes` registers the valid
/// `allow(...)` codes for suppression parsing.
pub fn load(root: &Path, known_codes: &[&'static str]) -> std::io::Result<Workspace> {
    let mut paths = Vec::new();
    walk(root, root, &mut paths)?;
    paths.sort();

    let mut files = Vec::new();
    let mut suppression_diags = Vec::new();
    for rel in paths {
        let text = std::fs::read_to_string(root.join(&rel))?;
        let tokens = lexer::lex(&text);
        let (suppressions, mut diags) = suppress::parse(&rel, &text, &tokens, known_codes);
        suppression_diags.append(&mut diags);
        let test_regions = test_regions(&text, &tokens);
        files.push(SourceFile {
            crate_name: crate_of(&rel),
            role: role_of(&rel),
            rel,
            text,
            tokens,
            test_regions,
            suppressions,
        });
    }
    Ok(Workspace {
        root: root.to_path_buf(),
        files,
        suppression_diags,
    })
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

fn crate_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    if parts.next() == Some("crates") {
        if let Some(name) = parts.next() {
            return name.to_string();
        }
    }
    "cfva".to_string()
}

fn role_of(rel: &str) -> Role {
    let segments: Vec<&str> = rel.split('/').collect();
    if segments.contains(&"tests") {
        Role::Test
    } else if segments.contains(&"benches") {
        Role::Bench
    } else if segments.contains(&"examples") {
        Role::Example
    } else if segments.contains(&"bin") {
        Role::Bin
    } else {
        Role::Lib
    }
}

/// Computes the byte ranges of test-only items: an item annotated
/// `#[test]`, or any `cfg` attribute naming `test` (e.g.
/// `#[cfg(test)]`, `#[cfg(any(test, fuzzing))]`) — except negations
/// (`#[cfg(not(test))]` guards *library* code and is not a test
/// region). The region is the annotated item's body (`{ … }`).
fn test_regions(source: &str, tokens: &[Token]) -> Vec<(usize, usize)> {
    let code: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.kind.is_trivia())
        .map(|(i, _)| i)
        .collect();
    let mut regions = Vec::new();
    let mut k = 0usize;
    while k < code.len() {
        let i = code[k];
        if tokens[i].kind != TokenKind::Punct('#') {
            k += 1;
            continue;
        }
        // Parse `#[ … ]`, brackets nesting.
        let Some(open) = code.get(k + 1).copied() else {
            break;
        };
        if tokens[open].kind != TokenKind::Punct('[') {
            k += 1;
            continue;
        }
        let mut depth = 0i32;
        let mut j = k + 1;
        let mut attr_idents: Vec<&str> = Vec::new();
        let close_k = loop {
            let Some(&idx) = code.get(j) else {
                break None;
            };
            match tokens[idx].kind {
                TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break Some(j);
                    }
                }
                TokenKind::Ident => attr_idents.push(tokens[idx].text(source)),
                _ => {}
            }
            j += 1;
        };
        let Some(close_k) = close_k else {
            break;
        };
        let is_test_attr = attr_idents.contains(&"test")
            && !attr_idents.contains(&"not")
            // `#[cfg_attr(test, …)]` applies `…` under test — the item
            // itself still compiles (and must lint) outside tests.
            && attr_idents.first() != Some(&"cfg_attr");
        if !is_test_attr {
            k = close_k + 1;
            continue;
        }
        // Skip any further attributes between this one and the item.
        let mut item_k = close_k + 1;
        while let Some(&idx) = code.get(item_k) {
            if tokens[idx].kind == TokenKind::Punct('#')
                && code
                    .get(item_k + 1)
                    .is_some_and(|&n| tokens[n].kind == TokenKind::Punct('['))
            {
                let mut d = 0i32;
                let mut jj = item_k + 1;
                while let Some(&ii) = code.get(jj) {
                    match tokens[ii].kind {
                        TokenKind::Punct('[') => d += 1,
                        TokenKind::Punct(']') => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    jj += 1;
                }
                item_k = jj + 1;
            } else {
                break;
            }
        }
        // The item's body: from the first `{` at depth 0 to its match.
        // A `;`-terminated item (e.g. `use`) before any `{` has no body.
        let mut brace_depth = 0i32;
        let mut body_start = None;
        let mut m = item_k;
        let mut end_k = None;
        while let Some(&idx) = code.get(m) {
            match tokens[idx].kind {
                TokenKind::Punct(';') if brace_depth == 0 => break,
                TokenKind::Punct('{') => {
                    if brace_depth == 0 {
                        body_start = Some(idx);
                    }
                    brace_depth += 1;
                }
                TokenKind::Punct('}') => {
                    brace_depth -= 1;
                    if brace_depth == 0 {
                        end_k = Some(m);
                        break;
                    }
                }
                _ => {}
            }
            m += 1;
        }
        if let (Some(start_idx), Some(end_k)) = (body_start, end_k) {
            regions.push((tokens[start_idx].start, tokens[code[end_k]].end));
            k = end_k + 1;
        } else {
            k = close_k + 1;
        }
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn regions_of(src: &str) -> Vec<(usize, usize)> {
        test_regions(src, &lex(src))
    }

    #[test]
    fn cfg_test_module_body_is_a_region() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() {}";
        let regions = regions_of(src);
        assert_eq!(regions.len(), 1);
        let unwrap_at = src.find("unwrap").unwrap();
        assert!(regions[0].0 < unwrap_at && unwrap_at < regions[0].1);
        let lib2_at = src.find("lib2").unwrap();
        assert!(lib2_at >= regions[0].1);
    }

    #[test]
    fn test_fn_with_stacked_attributes() {
        let src = "#[test]\n#[should_panic]\nfn boom() { panic!(\"x\") }\nfn lib() {}";
        let regions = regions_of(src);
        assert_eq!(regions.len(), 1);
        let panic_at = src.find("panic!").unwrap();
        assert!(regions[0].0 < panic_at && panic_at < regions[0].1);
    }

    #[test]
    fn cfg_not_test_is_not_a_region() {
        let src = "#[cfg(not(test))]\nfn lib() { x.unwrap(); }";
        assert!(regions_of(src).is_empty());
    }

    #[test]
    fn cfg_any_including_test_is_a_region() {
        let src = "#[cfg(any(test, fuzzing))]\nfn helper() { x.unwrap(); }";
        assert_eq!(regions_of(src).len(), 1);
    }

    #[test]
    fn cfg_attr_test_is_not_a_region() {
        // The item still compiles (and must lint) outside test builds.
        let src = "#[cfg_attr(test, derive(Debug))]\nstruct S { x: u32 }";
        assert!(regions_of(src).is_empty());
    }

    #[test]
    fn attribute_in_comment_is_ignored() {
        let src = "// #[cfg(test)]\nfn lib() { }";
        assert!(regions_of(src).is_empty());
    }

    #[test]
    fn roles_and_crates() {
        assert_eq!(role_of("crates/cfva-core/src/lib.rs"), Role::Lib);
        assert_eq!(role_of("crates/cfva-serve/tests/pool.rs"), Role::Test);
        assert_eq!(role_of("crates/cfva-bench/benches/serve.rs"), Role::Bench);
        assert_eq!(role_of("examples/quickstart.rs"), Role::Example);
        assert_eq!(
            role_of("crates/cfva-bench/src/bin/experiments.rs"),
            Role::Bin
        );
        assert_eq!(role_of("tests/engine_agreement.rs"), Role::Test);
        assert_eq!(crate_of("crates/cfva-core/src/lib.rs"), "cfva-core");
        assert_eq!(crate_of("src/lib.rs"), "cfva");
        assert_eq!(crate_of("tests/paper_examples.rs"), "cfva");
    }
}
