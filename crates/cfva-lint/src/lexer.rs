//! A hand-rolled, lossless Rust lexer.
//!
//! The lints never need expression-level parsing — they need a token
//! stream that **never confuses code with comments or strings**:
//! `panic!` inside a doc example must not fire L002, and `// .unwrap()`
//! inside a string literal must not register a suppression. So the
//! lexer handles the full set of Rust's "container" syntax —
//! line/doc comments, *nested* block comments, string literals with
//! escapes, raw strings with arbitrary `#` fences, byte and byte-raw
//! strings, char literals vs. lifetimes — and is otherwise simple:
//! identifiers, numbers and single-character punctuation.
//!
//! The stream is **lossless**: concatenating every token's text (in
//! order, including whitespace tokens) reproduces the input byte for
//! byte, and every token carries its 1-based line/column. Both
//! properties are pinned by the property tests in
//! `tests/lexer_prop.rs`.

/// What a token is, at the granularity the lints care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Spaces, tabs, newlines.
    Whitespace,
    /// `// …` to end of line (`///`/`//!` included — `doc` is true).
    LineComment {
        /// Whether this is a doc comment (`///` or `//!`).
        doc: bool,
    },
    /// `/* … */`, nesting-aware (`/** …` / `/*! …` set `doc`).
    BlockComment {
        /// Whether this is a doc comment (`/**` or `/*!`).
        doc: bool,
    },
    /// An identifier or keyword (`foo`, `self`, `fn`, `r#raw_ident`).
    Ident,
    /// A lifetime such as `'a` or `'static` (never a char literal).
    Lifetime,
    /// A char or byte-char literal: `'x'`, `'\n'`, `b'x'`.
    Char,
    /// A string or byte-string literal with escapes: `"…"`, `b"…"`.
    Str,
    /// A raw (byte) string: `r"…"`, `r#"…"#`, `br##"…"##`.
    RawStr,
    /// A numeric literal (integer or float, any base).
    Num,
    /// One punctuation character (`.`, `[`, `::` is two tokens, …).
    Punct(char),
}

impl TokenKind {
    /// Whether this token is any comment flavor.
    pub fn is_comment(self) -> bool {
        matches!(
            self,
            TokenKind::LineComment { .. } | TokenKind::BlockComment { .. }
        )
    }

    /// Whether this token is a string-ish literal (escaped, raw, or
    /// char) — text inside it is data, not code.
    pub fn is_stringish(self) -> bool {
        matches!(self, TokenKind::Str | TokenKind::RawStr | TokenKind::Char)
    }

    /// Whether this token carries no code meaning (whitespace or
    /// comment) — the tokens lint scans skip over.
    pub fn is_trivia(self) -> bool {
        self == TokenKind::Whitespace || self.is_comment()
    }
}

/// One token with its byte span and 1-based start position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// The classification.
    pub kind: TokenKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset one past the last byte, exclusive.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based column (in bytes) of the first byte.
    pub col: u32,
}

impl Token {
    /// The token's text within `source` (the string it was lexed from).
    pub fn text<'s>(&self, source: &'s str) -> &'s str {
        &source[self.start..self.end]
    }
}

/// Rust's strict and reserved keywords — enough to tell `return [1]`
/// (array literal) from `table[1]` (indexing) and to keep keywords out
/// of path matching.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern",
    "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "super", "trait", "true", "type", "unsafe", "use",
    "where", "while", "yield",
];

/// Whether `ident` is a Rust keyword (`self`/`Self` are deliberately
/// *not* keywords here: they participate in paths like ordinary
/// segments).
pub fn is_keyword(ident: &str) -> bool {
    KEYWORDS.contains(&ident)
}

/// Lexes `source` into a lossless token stream. Never fails: malformed
/// input (an unterminated string, a stray quote) degrades to
/// best-effort tokens that still cover every byte.
pub fn lex(source: &str) -> Vec<Token> {
    Lexer::new(source).run()
}

struct Lexer<'s> {
    src: &'s str,
    /// `(byte offset, char)` for every char, plus a sentinel position.
    chars: Vec<(usize, char)>,
    /// Index into `chars`.
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Self {
        Lexer {
            src,
            chars: src.char_indices().collect(),
            pos: 0,
            line: 1,
            col: 1,
            tokens: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).map(|&(_, c)| c)
    }

    fn offset(&self) -> usize {
        self.chars
            .get(self.pos)
            .map(|&(o, _)| o)
            .unwrap_or(self.src.len())
    }

    /// Consumes one char, maintaining the line/column counters.
    fn bump(&mut self) -> Option<char> {
        let &(_, c) = self.chars.get(self.pos)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += u32::try_from(c.len_utf8()).unwrap_or(1);
        }
        Some(c)
    }

    fn run(mut self) -> Vec<Token> {
        while self.pos < self.chars.len() {
            let start = self.offset();
            let (line, col) = (self.line, self.col);
            let kind = self.next_kind();
            let end = self.offset();
            debug_assert!(end > start, "lexer must always make progress");
            self.tokens.push(Token {
                kind,
                start,
                end,
                line,
                col,
            });
        }
        self.tokens
    }

    fn next_kind(&mut self) -> TokenKind {
        let c = self.peek(0).unwrap_or('\0');
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                while matches!(self.peek(0), Some(' ' | '\t' | '\r' | '\n')) {
                    self.bump();
                }
                TokenKind::Whitespace
            }
            '/' if self.peek(1) == Some('/') => self.line_comment(),
            '/' if self.peek(1) == Some('*') => self.block_comment(),
            '"' => self.string(),
            '\'' => self.char_or_lifetime(),
            'r' if matches!(self.peek(1), Some('"' | '#')) && self.raw_fence(1).is_some() => {
                let fence = self.raw_fence(1).unwrap_or(0);
                self.raw_string(1, fence)
            }
            'b' => self.byte_prefixed(),
            c if c.is_ascii_digit() => self.number(),
            c if is_ident_start(c) => self.ident(),
            _ => {
                self.bump();
                TokenKind::Punct(c)
            }
        }
    }

    fn line_comment(&mut self) -> TokenKind {
        // `///` and `//!` are doc comments; `////…` is a plain comment
        // (rustdoc's own rule).
        let doc = match (self.peek(2), self.peek(3)) {
            (Some('!'), _) => true,
            (Some('/'), Some('/')) => false,
            (Some('/'), _) => true,
            _ => false,
        };
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
        TokenKind::LineComment { doc }
    }

    fn block_comment(&mut self) -> TokenKind {
        // `/**` and `/*!` are doc comments; `/**/` and `/***…` are not.
        let doc = match (self.peek(2), self.peek(3)) {
            (Some('!'), _) => true,
            (Some('*'), Some('*' | '/')) => false,
            (Some('*'), _) => true,
            _ => false,
        };
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break, // unterminated: cover to EOF
            }
        }
        TokenKind::BlockComment { doc }
    }

    /// An escaped string body, starting at the opening quote.
    fn string(&mut self) -> TokenKind {
        self.bump(); // opening '"'
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => {
                    self.bump();
                    self.bump(); // the escaped char (any, incl. '"')
                }
                '"' => {
                    self.bump();
                    break;
                }
                _ => {
                    self.bump();
                }
            }
        }
        TokenKind::Str
    }

    /// `'a` / `'static` (lifetime) vs `'x'` / `'\n'` (char literal),
    /// starting at the quote.
    fn char_or_lifetime(&mut self) -> TokenKind {
        // A backslash right after the quote is always a char literal.
        if self.peek(1) == Some('\\') {
            self.bump(); // '\''
            self.bump(); // '\\'
            self.bump(); // escaped char
            while let Some(c) = self.peek(0) {
                // `'\u{1F600}'`-style escapes: consume to the closing quote.
                self.bump();
                if c == '\'' {
                    break;
                }
            }
            return TokenKind::Char;
        }
        // `'x'` — exactly one char then a closing quote → char literal;
        // anything else (`'a`, `'static`, `'_`) is a lifetime.
        if self.peek(1).is_some() && self.peek(2) == Some('\'') {
            self.bump();
            self.bump();
            self.bump();
            return TokenKind::Char;
        }
        self.bump(); // '\''
        while matches!(self.peek(0), Some(c) if is_ident_continue(c)) {
            self.bump();
        }
        TokenKind::Lifetime
    }

    /// Detects `r"…"` / `r#"…"#` fences: returns the hash count when
    /// position `from` starts a raw-string fence, `None` otherwise
    /// (e.g. `r#raw_ident`).
    fn raw_fence(&self, from: usize) -> Option<usize> {
        let mut hashes = 0usize;
        loop {
            match self.peek(from + hashes) {
                Some('#') => hashes += 1,
                Some('"') => return Some(hashes),
                _ => return None,
            }
        }
    }

    /// Consumes a raw string whose `r` is at the current position and
    /// whose fence (`prefix` chars of `r`/`br`, then `fence` hashes,
    /// then `"`) has been validated by [`raw_fence`](Self::raw_fence).
    fn raw_string(&mut self, prefix: usize, fence: usize) -> TokenKind {
        for _ in 0..prefix + fence + 1 {
            self.bump();
        }
        // Scan for `"` followed by `fence` hashes.
        'scan: while let Some(c) = self.bump() {
            if c == '"' {
                for i in 0..fence {
                    if self.peek(i) != Some('#') {
                        continue 'scan;
                    }
                }
                for _ in 0..fence {
                    self.bump();
                }
                break;
            }
        }
        TokenKind::RawStr
    }

    /// Tokens starting with `b`: `b"…"`, `b'…'`, `br#"…"#`, or a plain
    /// identifier.
    fn byte_prefixed(&mut self) -> TokenKind {
        match self.peek(1) {
            Some('"') => {
                self.bump(); // 'b'
                self.string()
            }
            Some('\'') => {
                self.bump(); // 'b'
                self.char_or_lifetime()
            }
            Some('r') if self.raw_fence(2).is_some() => {
                let fence = self.raw_fence(2).unwrap_or(0);
                self.raw_string(2, fence)
            }
            _ => self.ident(),
        }
    }

    fn number(&mut self) -> TokenKind {
        // Integer/float body: digits, `_`, base prefixes and hex
        // letters all fall under "alphanumeric or underscore". A `.`
        // continues the number only when followed by a digit, so `0..n`
        // lexes as `0`, `.`, `.`, `n`.
        while let Some(c) = self.peek(0) {
            let continues = c.is_ascii_alphanumeric()
                || c == '_'
                || (c == '.' && matches!(self.peek(1), Some(d) if d.is_ascii_digit()));
            if !continues {
                break;
            }
            self.bump();
        }
        TokenKind::Num
    }

    fn ident(&mut self) -> TokenKind {
        // `r#keyword` raw identifiers lex as one Ident token.
        if self.peek(0) == Some('r')
            && self.peek(1) == Some('#')
            && matches!(self.peek(2), Some(c) if is_ident_start(c))
        {
            self.bump();
            self.bump();
        }
        while matches!(self.peek(0), Some(c) if is_ident_continue(c)) {
            self.bump();
        }
        TokenKind::Ident
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || !c.is_ascii()
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || !c.is_ascii()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn lossless_over_mixed_source() {
        let src = "fn main() { let s = \"a // not a comment\"; /* c /* nested */ */ s[0]; }";
        let toks = lex(src);
        let rebuilt: String = toks.iter().map(|t| t.text(src)).collect();
        assert_eq!(rebuilt, src);
    }

    #[test]
    fn comment_lookalikes_inside_strings_stay_strings() {
        for src in [
            r#"let a = "// not a comment";"#,
            r##"let b = r#"/* also data "quotes" */"#;"##,
            "let c = b\"// bytes\";",
            r#"let d = '"';"#,
        ] {
            assert!(
                lex(src).iter().all(|t| !t.kind.is_comment()),
                "no comment tokens in {src:?}"
            );
        }
    }

    #[test]
    fn code_lookalikes_inside_comments_stay_comments() {
        let src = "// let x = \"unterminated\n let real = 1;";
        let toks = kinds(src);
        assert_eq!(
            toks[0],
            (
                TokenKind::LineComment { doc: false },
                "// let x = \"unterminated".to_string()
            )
        );
        assert!(toks
            .iter()
            .any(|(k, s)| *k == TokenKind::Ident && s == "real"));
    }

    #[test]
    fn nested_block_comments_close_at_matching_depth() {
        let src = "/* a /* b */ still comment */ code";
        let toks = kinds(src);
        assert_eq!(toks[0].0, TokenKind::BlockComment { doc: false });
        assert_eq!(toks[0].1, "/* a /* b */ still comment */");
        assert!(toks
            .iter()
            .any(|(k, s)| *k == TokenKind::Ident && s == "code"));
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = r####"let s = r##"body with "# inside"##; x"####;
        let toks = kinds(src);
        let raw = toks.iter().find(|(k, _)| *k == TokenKind::RawStr);
        assert_eq!(
            raw.map(|(_, s)| s.as_str()),
            Some(r###"r##"body with "# inside"##"###)
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'y' }";
        let toks = kinds(src);
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(toks
            .iter()
            .any(|(k, s)| *k == TokenKind::Char && s == "'y'"));
    }

    #[test]
    fn char_escapes() {
        for src in ["'\\n'", "'\\''", "'\\u{1F600}'", "b'x'"] {
            let toks = lex(src);
            assert_eq!(toks.len(), 1, "{src:?} is one token: {toks:?}");
            assert_eq!(toks[0].kind, TokenKind::Char);
        }
    }

    #[test]
    fn doc_comment_detection() {
        assert_eq!(kinds("/// doc")[0].0, TokenKind::LineComment { doc: true });
        assert_eq!(kinds("//! doc")[0].0, TokenKind::LineComment { doc: true });
        assert_eq!(kinds("// no")[0].0, TokenKind::LineComment { doc: false });
        assert_eq!(kinds("//// no")[0].0, TokenKind::LineComment { doc: false });
        assert_eq!(
            kinds("/** d */")[0].0,
            TokenKind::BlockComment { doc: true }
        );
        assert_eq!(
            kinds("/*! d */")[0].0,
            TokenKind::BlockComment { doc: true }
        );
        assert_eq!(kinds("/**/ x")[0].0, TokenKind::BlockComment { doc: false });
    }

    #[test]
    fn line_and_column_positions() {
        let src = "ab\n  cd";
        let toks: Vec<Token> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .collect();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn numbers_do_not_eat_range_dots() {
        let toks = kinds("0..len");
        assert_eq!(toks[0], (TokenKind::Num, "0".into()));
        assert_eq!(toks[1], (TokenKind::Punct('.'), ".".into()));
        let toks = kinds("1.5e3 0x1f 0b10_01");
        assert_eq!(toks[0], (TokenKind::Num, "1.5e3".into()));
    }

    #[test]
    fn raw_identifier_is_one_ident() {
        let toks = kinds("r#type");
        assert_eq!(toks[0], (TokenKind::Ident, "r#type".into()));
    }
}
