//! Vector registers with FIFO or random-access write ports.
//!
//! The paper's Section 5D: "To support the out-of-order access, elements
//! of the vector register have to be addressed out of order.
//! Consequently, this register has to be of the random access type,
//! whereas for ordered access and return a FIFO organization is
//! adequate." This module makes that hardware distinction a type-level
//! one.

use std::error::Error;
use std::fmt;

/// Write-port organisation of a vector register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WritePolicy {
    /// Slots must be written in order 0, 1, 2, …: the cheap organisation
    /// that suffices for in-order memory return.
    Fifo,
    /// Any slot may be written at any time: required by out-of-order
    /// memory return.
    #[default]
    RandomAccess,
}

impl fmt::Display for WritePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WritePolicy::Fifo => write!(f, "fifo"),
            WritePolicy::RandomAccess => write!(f, "random-access"),
        }
    }
}

/// A register-file write error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegError {
    /// A FIFO register was written out of order.
    OutOfOrderWrite {
        /// The slot that was written.
        slot: u64,
        /// The slot the FIFO port expected.
        expected: u64,
    },
    /// The slot index exceeds the register length.
    SlotOutOfRange {
        /// The offending slot.
        slot: u64,
        /// The register length.
        len: u64,
    },
    /// A slot was written twice within one access.
    DoubleWrite {
        /// The offending slot.
        slot: u64,
    },
    /// The register was read back before every slot arrived.
    Incomplete {
        /// Number of slots still missing.
        missing: u64,
    },
}

impl fmt::Display for RegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            RegError::OutOfOrderWrite { slot, expected } => write!(
                f,
                "fifo register written out of order: slot {slot}, expected {expected}"
            ),
            RegError::SlotOutOfRange { slot, len } => {
                write!(f, "slot {slot} out of range for register of length {len}")
            }
            RegError::DoubleWrite { slot } => write!(f, "slot {slot} written twice"),
            RegError::Incomplete { missing } => {
                write!(f, "register read while {missing} elements still in flight")
            }
        }
    }
}

impl Error for RegError {}

/// One vector register of fixed length.
///
/// # Examples
///
/// ```
/// use cfva_vecproc::{VectorRegister, WritePolicy};
///
/// let mut reg = VectorRegister::new(4, WritePolicy::RandomAccess);
/// reg.write(2, 20)?; // out-of-order arrival: fine
/// reg.write(0, 0)?;
/// reg.write(3, 30)?;
/// reg.write(1, 10)?;
/// assert_eq!(reg.values()?, &[0, 10, 20, 30]);
/// # Ok::<(), cfva_vecproc::RegError>(())
/// ```
///
/// The same arrival order on a FIFO register fails:
///
/// ```
/// use cfva_vecproc::{RegError, VectorRegister, WritePolicy};
///
/// let mut reg = VectorRegister::new(4, WritePolicy::Fifo);
/// assert_eq!(
///     reg.write(2, 20),
///     Err(RegError::OutOfOrderWrite { slot: 2, expected: 0 })
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorRegister {
    data: Vec<Option<u64>>,
    policy: WritePolicy,
    next_fifo: u64,
    written: u64,
}

impl VectorRegister {
    /// Creates an empty register of `len` slots.
    pub fn new(len: u64, policy: WritePolicy) -> Self {
        VectorRegister {
            data: vec![None; len as usize],
            policy,
            next_fifo: 0,
            written: 0,
        }
    }

    /// Register length in elements.
    pub fn len(&self) -> u64 {
        self.data.len() as u64
    }

    /// Returns `true` for a zero-length register.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The write-port organisation.
    pub const fn policy(&self) -> WritePolicy {
        self.policy
    }

    /// Writes `value` into `slot` as the memory return for that element
    /// arrives.
    ///
    /// # Errors
    ///
    /// * [`RegError::SlotOutOfRange`] if `slot ≥ len`;
    /// * [`RegError::OutOfOrderWrite`] on a FIFO register when `slot`
    ///   is not the next sequential index;
    /// * [`RegError::DoubleWrite`] if the slot already holds a value.
    pub fn write(&mut self, slot: u64, value: u64) -> Result<(), RegError> {
        if slot >= self.len() {
            return Err(RegError::SlotOutOfRange {
                slot,
                len: self.len(),
            });
        }
        if self.policy == WritePolicy::Fifo && slot != self.next_fifo {
            return Err(RegError::OutOfOrderWrite {
                slot,
                expected: self.next_fifo,
            });
        }
        if self.data[slot as usize].is_some() {
            return Err(RegError::DoubleWrite { slot });
        }
        self.data[slot as usize] = Some(value);
        self.written += 1;
        if self.policy == WritePolicy::Fifo {
            self.next_fifo += 1;
        }
        Ok(())
    }

    /// Number of slots written so far.
    pub const fn written(&self) -> u64 {
        self.written
    }

    /// Whether every slot holds a value.
    pub fn is_complete(&self) -> bool {
        self.written == self.len()
    }

    /// The register contents, available once complete.
    ///
    /// # Errors
    ///
    /// [`RegError::Incomplete`] while elements are still in flight.
    pub fn values(&self) -> Result<Vec<u64>, RegError> {
        if !self.is_complete() {
            return Err(RegError::Incomplete {
                missing: self.len() - self.written,
            });
        }
        Ok(self
            .data
            .iter()
            .map(|v| v.expect("complete register has all slots"))
            .collect())
    }

    /// Reads one slot if it has arrived (chained consumers use this).
    pub fn get(&self, slot: u64) -> Option<u64> {
        self.data.get(slot as usize).copied().flatten()
    }

    /// Clears all slots for the next access.
    pub fn reset(&mut self) {
        self.data.fill(None);
        self.next_fifo = 0;
        self.written = 0;
    }

    /// Fills the register from a slice (used to preset operands).
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the register length.
    pub fn load_values(&mut self, values: &[u64]) {
        assert_eq!(values.len() as u64, self.len(), "length mismatch");
        self.reset();
        for (i, &v) in values.iter().enumerate() {
            self.data[i] = Some(v);
        }
        self.written = self.len();
        self.next_fifo = self.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_access_accepts_any_order() {
        let mut reg = VectorRegister::new(4, WritePolicy::RandomAccess);
        for slot in [3u64, 0, 2, 1] {
            reg.write(slot, slot * 10).unwrap();
        }
        assert!(reg.is_complete());
        assert_eq!(reg.values().unwrap(), vec![0, 10, 20, 30]);
    }

    #[test]
    fn fifo_accepts_only_sequential() {
        let mut reg = VectorRegister::new(4, WritePolicy::Fifo);
        reg.write(0, 1).unwrap();
        reg.write(1, 2).unwrap();
        assert_eq!(
            reg.write(3, 4),
            Err(RegError::OutOfOrderWrite {
                slot: 3,
                expected: 2
            })
        );
        reg.write(2, 3).unwrap();
        reg.write(3, 4).unwrap();
        assert!(reg.is_complete());
    }

    #[test]
    fn double_write_detected() {
        let mut reg = VectorRegister::new(4, WritePolicy::RandomAccess);
        reg.write(1, 5).unwrap();
        assert_eq!(reg.write(1, 6), Err(RegError::DoubleWrite { slot: 1 }));
    }

    #[test]
    fn out_of_range_detected() {
        let mut reg = VectorRegister::new(4, WritePolicy::RandomAccess);
        assert_eq!(
            reg.write(4, 0),
            Err(RegError::SlotOutOfRange { slot: 4, len: 4 })
        );
    }

    #[test]
    fn incomplete_read_rejected() {
        let mut reg = VectorRegister::new(4, WritePolicy::RandomAccess);
        reg.write(0, 1).unwrap();
        assert_eq!(reg.values(), Err(RegError::Incomplete { missing: 3 }));
        assert_eq!(reg.get(0), Some(1));
        assert_eq!(reg.get(1), None);
    }

    #[test]
    fn reset_and_preset() {
        let mut reg = VectorRegister::new(3, WritePolicy::Fifo);
        reg.load_values(&[7, 8, 9]);
        assert_eq!(reg.values().unwrap(), vec![7, 8, 9]);
        reg.reset();
        assert!(!reg.is_complete());
        reg.write(0, 1).unwrap(); // FIFO pointer reset too
        assert_eq!(reg.written(), 1);
    }

    #[test]
    fn error_display() {
        let e = RegError::OutOfOrderWrite {
            slot: 3,
            expected: 1,
        };
        assert!(e.to_string().contains("slot 3"));
        assert!(RegError::Incomplete { missing: 2 }
            .to_string()
            .contains("2 elements"));
    }
}
