//! # cfva-vecproc — decoupled access/execute vector processor model
//!
//! The processor substrate of the conflict-free vector access
//! reproduction (the paper's Figure 1): a memory-access module and an
//! execute unit decoupled through a vector register file.
//!
//! * [`regfile`] — vector registers with FIFO or random-access write
//!   ports. Out-of-order memory return **requires** random access
//!   (paper Section 5D); a FIFO register file rejects the paper's access
//!   orders, and the type system surfaces that here.
//! * [`isa`] — a minimal vector instruction set (`VLOAD`, `VSTORE`,
//!   `VADD`, `VMUL`, `VAXPY`) sufficient for the motivating kernels,
//!   with a textual assembler in [`asm`].
//! * [`stripmine`] — compiler-style strip-mining of long vectors into
//!   register-length chunks, plus the Section 5C short-vector split.
//! * [`machine`] — the decoupled machine: plans accesses with
//!   [`cfva_core`], times them on [`cfva_memsim`], and models chained
//!   versus unchained LOAD→EXECUTE (Section 5F).
//! * [`kernels`] — DAXPY, matrix row/column/diagonal walks and FFT
//!   butterfly strides: the access patterns vector memories were built
//!   for.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod asm;
pub mod isa;
pub mod kernels;
pub mod machine;
pub mod regfile;
pub mod stripmine;

pub use asm::parse_program;
pub use isa::{VReg, VectorOp};
pub use machine::{Machine, MachineConfig, MachineStats, OpStats};
pub use regfile::{RegError, VectorRegister, WritePolicy};
