//! The decoupled access/execute machine (paper Figure 1).
//!
//! The machine executes straight-line vector programs. Memory operations
//! are planned by a [`Planner`], timed cycle-accurately on a
//! [`MemorySystem`], and their returned elements written into the
//! destination register *in arrival order* — which is out of element
//! order for the paper's access schemes, so the register file's
//! [`WritePolicy`] matters (Section 5D). Arithmetic runs on the execute
//! unit, optionally *chained* to the preceding load (Section 5F): the
//! paper's out-of-order scheme returns one element per cycle in a
//! deterministic order, which is what makes chaining feasible at all.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use cfva_core::plan::{AccessPlan, Planner, Strategy};
use cfva_core::{PlanError, VectorSpec};
use cfva_memsim::{AccessStats, MemConfig, MemorySystem};

use crate::isa::{VReg, VectorOp};
use crate::regfile::{RegError, VectorRegister, WritePolicy};

/// Machine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    /// Architectural vector register length `L` (maximum elements).
    pub reg_len: u64,
    /// Number of vector registers.
    pub num_regs: u8,
    /// Register write-port organisation.
    pub write_policy: WritePolicy,
    /// Whether LOAD→EXECUTE chaining is enabled (Section 5F).
    pub chaining: bool,
    /// Execute-unit pipeline depth in cycles.
    pub exec_depth: u64,
    /// Access strategy requested from the planner.
    pub strategy: Strategy,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            reg_len: 64,
            num_regs: 8,
            write_policy: WritePolicy::RandomAccess,
            chaining: false,
            exec_depth: 4,
            strategy: Strategy::Auto,
        }
    }
}

/// A machine-level execution error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// Access planning failed.
    Plan(PlanError),
    /// A register write failed (e.g. out-of-order return into a FIFO
    /// register).
    Reg(RegError),
    /// An instruction names a register outside the file.
    UnknownRegister(VReg),
    /// An instruction's operands have different lengths.
    LengthMismatch {
        /// Length of the first operand.
        a: u64,
        /// Length of the second operand.
        b: u64,
    },
    /// A load longer than the architectural register length.
    TooLong {
        /// Requested length.
        requested: u64,
        /// Architectural maximum.
        max: u64,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::Plan(e) => write!(f, "planning failed: {e}"),
            MachineError::Reg(e) => write!(f, "register write failed: {e}"),
            MachineError::UnknownRegister(r) => write!(f, "unknown register {r}"),
            MachineError::LengthMismatch { a, b } => {
                write!(f, "operand length mismatch: {a} vs {b}")
            }
            MachineError::TooLong { requested, max } => {
                write!(
                    f,
                    "vector of {requested} elements exceeds register length {max}"
                )
            }
        }
    }
}

impl Error for MachineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MachineError::Plan(e) => Some(e),
            MachineError::Reg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PlanError> for MachineError {
    fn from(e: PlanError) -> Self {
        MachineError::Plan(e)
    }
}

impl From<RegError> for MachineError {
    fn from(e: RegError) -> Self {
        MachineError::Reg(e)
    }
}

/// Per-instruction timing record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpStats {
    /// Disassembly of the instruction.
    pub text: String,
    /// Cycle the instruction started.
    pub start: u64,
    /// Cycles it occupied the machine.
    pub cycles: u64,
    /// Memory conflicts it suffered (memory ops only).
    pub conflicts: u64,
    /// Whether it was chained to the previous load.
    pub chained: bool,
}

/// Whole-program timing record.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MachineStats {
    /// Total machine cycles.
    pub total_cycles: u64,
    /// Per-instruction breakdown.
    pub ops: Vec<OpStats>,
}

/// The decoupled vector machine.
///
/// # Examples
///
/// Chained DAXPY on a matched conflict-free memory:
///
/// ```
/// use cfva_core::mapping::XorMatched;
/// use cfva_core::plan::Planner;
/// use cfva_core::VectorSpec;
/// use cfva_memsim::MemConfig;
/// use cfva_vecproc::{Machine, MachineConfig, VectorOp, VReg};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let planner = Planner::matched(XorMatched::new(3, 4)?);
/// let mem = MemConfig::new(3, 3)?;
/// let mut machine = Machine::new(MachineConfig::default(), planner, mem);
///
/// let x = VectorSpec::new(0, 1, 64)?;
/// let y = VectorSpec::new(4096, 1, 64)?;
/// let stats = machine.run(&[
///     VectorOp::Load { dst: VReg(0), vec: x },
///     VectorOp::Load { dst: VReg(1), vec: y },
///     VectorOp::Axpy { dst: VReg(2), scalar: 3, x: VReg(0), y: VReg(1) },
/// ])?;
/// assert!(stats.total_cycles > 0);
/// # Ok(())
/// # }
/// ```
pub struct Machine {
    cfg: MachineConfig,
    planner: Planner,
    mem: MemorySystem,
    regs: Vec<VectorRegister>,
    image: HashMap<u64, u64>,
    cycle: u64,
    /// Destination of the immediately preceding load, for chaining.
    last_load_dst: Option<VReg>,
    // Reusable buffers for the plan->simulate hot path: every LOAD and
    // STORE plans into `plan`, simulates into `mem_stats`, and sorts
    // deliveries in `arrivals` without allocating per operation.
    plan: AccessPlan,
    mem_stats: AccessStats,
    arrivals: Vec<(u64, u64, u64)>,
}

impl Machine {
    /// Builds a machine over a planner and a memory configuration.
    pub fn new(cfg: MachineConfig, planner: Planner, mem: MemConfig) -> Self {
        let regs = (0..cfg.num_regs)
            .map(|_| VectorRegister::new(cfg.reg_len, cfg.write_policy))
            .collect();
        Machine {
            cfg,
            planner,
            mem: MemorySystem::new(mem),
            regs,
            image: HashMap::new(),
            cycle: 0,
            last_load_dst: None,
            plan: AccessPlan::new(),
            mem_stats: AccessStats::default(),
            arrivals: Vec::new(),
        }
    }

    /// The machine configuration.
    pub const fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Writes a word into the simulated memory image.
    pub fn write_mem(&mut self, addr: u64, value: u64) {
        self.image.insert(addr, value);
    }

    /// Reads a word from the simulated memory image. Uninitialised
    /// locations read as their own address — convenient for tests.
    pub fn read_mem(&self, addr: u64) -> u64 {
        self.image.get(&addr).copied().unwrap_or(addr)
    }

    /// Read access to a vector register.
    ///
    /// # Errors
    ///
    /// [`MachineError::UnknownRegister`] for an out-of-range name.
    pub fn reg(&self, r: VReg) -> Result<&VectorRegister, MachineError> {
        self.regs
            .get(r.0 as usize)
            .ok_or(MachineError::UnknownRegister(r))
    }

    /// Executes a straight-line program, returning its timing.
    ///
    /// # Errors
    ///
    /// Any [`MachineError`]; the machine state is unspecified after an
    /// error (like real hardware after an exception).
    pub fn run(&mut self, program: &[VectorOp]) -> Result<MachineStats, MachineError> {
        let mut stats = MachineStats::default();
        for op in program {
            let start = self.cycle;
            let (cycles, conflicts, chained) = self.execute(op)?;
            self.cycle += cycles;
            stats.ops.push(OpStats {
                text: op.to_string(),
                start,
                cycles,
                conflicts,
                chained,
            });
        }
        stats.total_cycles = self.cycle;
        Ok(stats)
    }

    fn execute(&mut self, op: &VectorOp) -> Result<(u64, u64, bool), MachineError> {
        match op {
            VectorOp::Load { dst, vec } => {
                let (cycles, conflicts) = self.do_load(*dst, vec)?;
                self.last_load_dst = Some(*dst);
                Ok((cycles, conflicts, false))
            }
            VectorOp::Store { src, vec } => {
                let (cycles, conflicts) = self.do_store(*src, vec)?;
                self.last_load_dst = None;
                Ok((cycles, conflicts, false))
            }
            VectorOp::Add { dst, a, b } => self.do_arith(*dst, *a, *b, u64::wrapping_add),
            VectorOp::Mul { dst, a, b } => self.do_arith(*dst, *a, *b, u64::wrapping_mul),
            VectorOp::Axpy { dst, scalar, x, y } => {
                let s = *scalar;
                self.do_arith(*dst, *x, *y, move |xv, yv| {
                    xv.wrapping_mul(s).wrapping_add(yv)
                })
            }
        }
    }

    fn do_load(&mut self, dst: VReg, vec: &VectorSpec) -> Result<(u64, u64), MachineError> {
        self.check_len(vec.len())?;
        self.reg(dst)?;
        self.planner
            .plan_into(vec, self.cfg.strategy, &mut self.plan)?;
        self.mem.run_plan_into(&self.plan, &mut self.mem_stats);

        // Write elements in arrival order: sort request entries by their
        // arrival cycle (ties cannot happen — the bus delivers one per
        // cycle).
        let mem_stats = &self.mem_stats;
        self.arrivals.clear();
        self.arrivals.extend(self.plan.iter().map(|e| {
            (
                mem_stats.arrival[e.element() as usize],
                e.element(),
                e.addr().get(),
            )
        }));
        self.arrivals.sort_unstable();

        let mut reg = VectorRegister::new(vec.len(), self.cfg.write_policy);
        for &(_, element, addr) in &self.arrivals {
            let value = self.image.get(&addr).copied().unwrap_or(addr);
            reg.write(element, value)?;
        }
        self.regs[dst.0 as usize] = reg;
        Ok((self.mem_stats.latency, self.mem_stats.conflicts))
    }

    fn do_store(&mut self, src: VReg, vec: &VectorSpec) -> Result<(u64, u64), MachineError> {
        self.check_len(vec.len())?;
        let values = self.reg(src)?.values()?;
        if values.len() as u64 != vec.len() {
            return Err(MachineError::LengthMismatch {
                a: values.len() as u64,
                b: vec.len(),
            });
        }
        self.planner
            .plan_into(vec, self.cfg.strategy, &mut self.plan)?;
        self.mem.run_plan_into(&self.plan, &mut self.mem_stats);
        for entry in &self.plan {
            self.image
                .insert(entry.addr().get(), values[entry.element() as usize]);
        }
        Ok((self.mem_stats.latency, self.mem_stats.conflicts))
    }

    fn do_arith(
        &mut self,
        dst: VReg,
        a: VReg,
        b: VReg,
        f: impl Fn(u64, u64) -> u64,
    ) -> Result<(u64, u64, bool), MachineError> {
        let av = self.reg(a)?.values()?;
        let bv = self.reg(b)?.values()?;
        if av.len() != bv.len() {
            return Err(MachineError::LengthMismatch {
                a: av.len() as u64,
                b: bv.len() as u64,
            });
        }
        self.reg(dst)?;
        let out: Vec<u64> = av.iter().zip(&bv).map(|(&x, &y)| f(x, y)).collect();
        let n = out.len() as u64;
        let mut reg = VectorRegister::new(n, self.cfg.write_policy);
        reg.load_values(&out);
        self.regs[dst.0 as usize] = reg;

        // Timing (Section 5F): unchained, the op streams its operands
        // only after the whole load finished: n cycles through a
        // exec_depth-deep pipeline. Chained to the preceding load, it
        // consumes each element the cycle it arrives, so only the
        // pipeline drain remains.
        let chained = self.cfg.chaining
            && self
                .last_load_dst
                .is_some_and(|last| last == a || last == b);
        let cycles = if chained {
            self.cfg.exec_depth
        } else {
            n + self.cfg.exec_depth
        };
        self.last_load_dst = None;
        Ok((cycles, 0, chained))
    }

    fn check_len(&self, len: u64) -> Result<(), MachineError> {
        if len > self.cfg.reg_len {
            return Err(MachineError::TooLong {
                requested: len,
                max: self.cfg.reg_len,
            });
        }
        Ok(())
    }
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("config", &self.cfg)
            .field("cycle", &self.cycle)
            .field("registers", &self.regs.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfva_core::mapping::XorMatched;

    fn machine(cfg: MachineConfig) -> Machine {
        let planner = Planner::matched(XorMatched::new(3, 4).unwrap());
        Machine::new(cfg, planner, MemConfig::new(3, 3).unwrap())
    }

    #[test]
    fn load_fills_register_with_memory_values() {
        let mut m = machine(MachineConfig::default());
        for i in 0..64u64 {
            m.write_mem(100 + 12 * i, 1000 + i);
        }
        let vec = VectorSpec::new(100, 12, 64).unwrap();
        m.run(&[VectorOp::Load { dst: VReg(0), vec }]).unwrap();
        let values = m.reg(VReg(0)).unwrap().values().unwrap();
        let want: Vec<u64> = (0..64).map(|i| 1000 + i).collect();
        assert_eq!(values, want);
    }

    #[test]
    fn conflict_free_load_takes_minimum_latency() {
        let mut m = machine(MachineConfig::default());
        let vec = VectorSpec::new(16, 12, 64).unwrap();
        let stats = m.run(&[VectorOp::Load { dst: VReg(0), vec }]).unwrap();
        assert_eq!(stats.ops[0].cycles, 8 + 64 + 1);
        assert_eq!(stats.ops[0].conflicts, 0);
    }

    #[test]
    fn fifo_register_rejects_out_of_order_return() {
        // The Section 5D point: the paper's scheme needs a random-access
        // register file.
        let cfg = MachineConfig {
            write_policy: WritePolicy::Fifo,
            ..MachineConfig::default()
        };
        let mut m = machine(cfg);
        let vec = VectorSpec::new(16, 12, 64).unwrap(); // OOO plan
        let err = m.run(&[VectorOp::Load { dst: VReg(0), vec }]);
        assert!(matches!(
            err,
            Err(MachineError::Reg(RegError::OutOfOrderWrite { .. }))
        ));
    }

    #[test]
    fn fifo_register_works_with_in_order_conflict_free_access() {
        // Family x = s = 4: canonical access is conflict free, elements
        // return in order, and the cheap FIFO register suffices —
        // exactly the pre-1992 design point.
        let cfg = MachineConfig {
            write_policy: WritePolicy::Fifo,
            strategy: Strategy::Canonical,
            ..MachineConfig::default()
        };
        let mut m = machine(cfg);
        let vec = VectorSpec::new(16, 16, 64).unwrap();
        let stats = m.run(&[VectorOp::Load { dst: VReg(0), vec }]).unwrap();
        assert_eq!(stats.ops[0].cycles, 8 + 64 + 1);
        assert_eq!(stats.ops[0].conflicts, 0);
    }

    #[test]
    fn canonical_strategy_on_conflicting_family_is_slow() {
        // The same access that the replay order serves in T+L+1 takes
        // longer in order (and returns out of element order through the
        // module queues, so it also needs a random-access register).
        let cfg = MachineConfig {
            strategy: Strategy::Canonical,
            ..MachineConfig::default()
        };
        let mut m = machine(cfg);
        let vec = VectorSpec::new(16, 12, 64).unwrap();
        let stats = m.run(&[VectorOp::Load { dst: VReg(0), vec }]).unwrap();
        assert!(stats.ops[0].cycles > 8 + 64 + 1);
        assert!(stats.ops[0].conflicts > 0);
    }

    #[test]
    fn store_round_trips_through_memory() {
        let mut m = machine(MachineConfig::default());
        let src = VectorSpec::new(0, 1, 64).unwrap();
        let dst = VectorSpec::new(8192, 24, 64).unwrap();
        m.run(&[
            VectorOp::Load {
                dst: VReg(0),
                vec: src,
            },
            VectorOp::Store {
                src: VReg(0),
                vec: dst,
            },
        ])
        .unwrap();
        for i in 0..64u64 {
            // Uninitialised source reads as its address: value = i.
            assert_eq!(m.read_mem(8192 + 24 * i), i);
        }
    }

    #[test]
    fn arithmetic_and_axpy() {
        let mut m = machine(MachineConfig::default());
        let x = VectorSpec::new(0, 1, 64).unwrap();
        let y = VectorSpec::new(4096, 1, 64).unwrap();
        m.run(&[
            VectorOp::Load {
                dst: VReg(0),
                vec: x,
            },
            VectorOp::Load {
                dst: VReg(1),
                vec: y,
            },
            VectorOp::Axpy {
                dst: VReg(2),
                scalar: 3,
                x: VReg(0),
                y: VReg(1),
            },
            VectorOp::Add {
                dst: VReg(3),
                a: VReg(2),
                b: VReg(0),
            },
            VectorOp::Mul {
                dst: VReg(4),
                a: VReg(0),
                b: VReg(0),
            },
        ])
        .unwrap();
        let axpy = m.reg(VReg(2)).unwrap().values().unwrap();
        for i in 0..64u64 {
            assert_eq!(axpy[i as usize], 3 * i + (4096 + i));
        }
        let add = m.reg(VReg(3)).unwrap().values().unwrap();
        assert_eq!(add[5], axpy[5] + 5);
        let mul = m.reg(VReg(4)).unwrap().values().unwrap();
        assert_eq!(mul[7], 49);
    }

    #[test]
    fn chaining_saves_a_vector_length_of_cycles() {
        let x = VectorSpec::new(0, 1, 64).unwrap();
        let y = VectorSpec::new(4096, 1, 64).unwrap();
        let program = [
            VectorOp::Load {
                dst: VReg(0),
                vec: x,
            },
            VectorOp::Load {
                dst: VReg(1),
                vec: y,
            },
            VectorOp::Axpy {
                dst: VReg(2),
                scalar: 3,
                x: VReg(0),
                y: VReg(1),
            },
        ];

        let mut unchained = machine(MachineConfig::default());
        let u = unchained.run(&program).unwrap();
        let mut chained = machine(MachineConfig {
            chaining: true,
            ..MachineConfig::default()
        });
        let c = chained.run(&program).unwrap();

        assert!(c.ops[2].chained);
        assert!(!u.ops[2].chained);
        assert_eq!(u.total_cycles - c.total_cycles, 64);
        // Same results either way.
        assert_eq!(
            unchained.reg(VReg(2)).unwrap().values().unwrap(),
            chained.reg(VReg(2)).unwrap().values().unwrap()
        );
    }

    #[test]
    fn length_mismatch_detected() {
        let mut m = machine(MachineConfig::default());
        let a = VectorSpec::new(0, 1, 64).unwrap();
        let b = VectorSpec::new(0, 1, 32).unwrap();
        let err = m.run(&[
            VectorOp::Load {
                dst: VReg(0),
                vec: a,
            },
            VectorOp::Load {
                dst: VReg(1),
                vec: b,
            },
            VectorOp::Add {
                dst: VReg(2),
                a: VReg(0),
                b: VReg(1),
            },
        ]);
        assert!(matches!(err, Err(MachineError::LengthMismatch { .. })));
    }

    #[test]
    fn register_bounds_and_vector_length_checked() {
        let mut m = machine(MachineConfig::default());
        let vec = VectorSpec::new(0, 1, 64).unwrap();
        assert!(matches!(
            m.run(&[VectorOp::Load {
                dst: VReg(200),
                vec
            }]),
            Err(MachineError::UnknownRegister(VReg(200)))
        ));
        let long = VectorSpec::new(0, 1, 128).unwrap();
        assert!(matches!(
            m.run(&[VectorOp::Load {
                dst: VReg(0),
                vec: long
            }]),
            Err(MachineError::TooLong {
                requested: 128,
                max: 64
            })
        ));
    }

    #[test]
    fn op_stats_record_program_shape() {
        let mut m = machine(MachineConfig::default());
        let vec = VectorSpec::new(16, 12, 64).unwrap();
        let stats = m
            .run(&[
                VectorOp::Load { dst: VReg(0), vec },
                VectorOp::Add {
                    dst: VReg(1),
                    a: VReg(0),
                    b: VReg(0),
                },
            ])
            .unwrap();
        assert_eq!(stats.ops.len(), 2);
        assert_eq!(stats.ops[0].start, 0);
        assert_eq!(stats.ops[1].start, stats.ops[0].cycles);
        assert_eq!(
            stats.total_cycles,
            stats.ops.iter().map(|o| o.cycles).sum::<u64>()
        );
        assert!(stats.ops[0].text.starts_with("vload"));
    }
}
