//! Compiler-style strip-mining and the Section 5C short-vector split.
//!
//! Application vectors are usually much longer than the register length
//! `L`; the compiler strip-mines them into register-length chunks, so
//! "a very high fraction of the accesses are of vectors of length equal
//! to that of the registers" (paper Section 1). The leftover tail is
//! shorter than `L`; Section 5C splits it once more into the largest
//! prefix the out-of-order scheme can still serve (`V = k·2^{w+t−x}`)
//! plus an in-order remainder.

use cfva_core::analysis::short_vector_split;
use cfva_core::{ConfigError, VectorSpec};

/// The chunks of one strip-mined vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StripMine {
    chunks: Vec<VectorSpec>,
    full_chunks: usize,
}

impl StripMine {
    /// Splits an `n`-element strided access into register-length chunks
    /// (`reg_len` each) plus at most one shorter tail chunk.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`] from chunk construction (zero stride,
    /// zero length, address overflow).
    pub fn new(base: u64, stride: i64, n: u64, reg_len: u64) -> Result<Self, ConfigError> {
        if n == 0 {
            return Err(ConfigError::OutOfRange {
                what: "total length",
                value: 0,
                constraint: "n >= 1",
            });
        }
        let mut chunks = Vec::new();
        let mut remaining = n;
        let mut offset: i128 = base as i128;
        while remaining > 0 {
            let this = remaining.min(reg_len);
            chunks.push(VectorSpec::new(offset as u64, stride, this)?);
            offset += stride as i128 * this as i128;
            remaining -= this;
        }
        let full_chunks = (n / reg_len) as usize;
        Ok(StripMine {
            chunks,
            full_chunks,
        })
    }

    /// All chunks, in element order.
    pub fn chunks(&self) -> &[VectorSpec] {
        &self.chunks
    }

    /// Number of chunks of exactly the register length.
    pub const fn full_chunks(&self) -> usize {
        self.full_chunks
    }

    /// The shorter-than-register tail chunk, if any.
    pub fn tail(&self) -> Option<&VectorSpec> {
        self.chunks.get(self.full_chunks)
    }

    /// Total elements covered.
    pub fn total_len(&self) -> u64 {
        self.chunks.iter().map(|c| c.len()).sum()
    }
}

/// Section 5C: split a short vector into the largest prefix the
/// out-of-order scheme can serve (`k·2^{w+t−x}` elements) and an
/// in-order tail. Either part may be absent.
///
/// `w` is the window boundary of the memory in use (`s` for matched,
/// `s` or `y` per family for unmatched) and `t` its latency exponent.
///
/// # Examples
///
/// ```
/// use cfva_vecproc::stripmine::split_short;
/// use cfva_core::VectorSpec;
///
/// // w = 4, t = 3, family x = 2 -> granule 32; 100 = 96 + 4.
/// let v = VectorSpec::new(1000, 12, 100)?;
/// let (ooo, tail) = split_short(&v, 4, 3);
/// let ooo = ooo.unwrap();
/// let tail = tail.unwrap();
/// assert_eq!(ooo.len(), 96);
/// assert_eq!(tail.len(), 4);
/// // The tail continues exactly where the prefix ends.
/// assert_eq!(tail.base().get(), 1000 + 96 * 12);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn split_short(vec: &VectorSpec, w: u32, t: u32) -> (Option<VectorSpec>, Option<VectorSpec>) {
    let (ooo_len, tail_len) = short_vector_split(vec.len(), vec.family(), w, t);
    let stride = vec.stride().get();
    let ooo = if ooo_len > 0 {
        Some(
            VectorSpec::new(vec.base().get(), stride, ooo_len)
                .expect("prefix of a valid vector is valid"),
        )
    } else {
        None
    };
    let tail = if tail_len > 0 {
        let tail_base = (vec.base().get() as i128 + stride as i128 * ooo_len as i128) as u64;
        Some(
            VectorSpec::new(tail_base, stride, tail_len)
                .expect("suffix of a valid vector is valid"),
        )
    } else {
        None
    };
    (ooo, tail)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_multiple_has_no_tail() {
        let sm = StripMine::new(0, 3, 256, 64).unwrap();
        assert_eq!(sm.chunks().len(), 4);
        assert_eq!(sm.full_chunks(), 4);
        assert!(sm.tail().is_none());
        assert_eq!(sm.total_len(), 256);
        // Chunks are contiguous in the access pattern.
        for (i, c) in sm.chunks().iter().enumerate() {
            assert_eq!(c.base().get(), (i as u64) * 64 * 3);
            assert_eq!(c.len(), 64);
        }
    }

    #[test]
    fn tail_chunk_is_shorter() {
        let sm = StripMine::new(10, 5, 200, 64).unwrap();
        assert_eq!(sm.chunks().len(), 4);
        assert_eq!(sm.full_chunks(), 3);
        let tail = sm.tail().unwrap();
        assert_eq!(tail.len(), 200 - 192);
        assert_eq!(tail.base().get(), 10 + 192 * 5);
    }

    #[test]
    fn short_vector_single_chunk() {
        let sm = StripMine::new(0, 1, 10, 64).unwrap();
        assert_eq!(sm.chunks().len(), 1);
        assert_eq!(sm.full_chunks(), 0);
        assert_eq!(sm.tail().unwrap().len(), 10);
    }

    #[test]
    fn negative_stride_strip_mining() {
        let sm = StripMine::new(10_000, -4, 130, 64).unwrap();
        assert_eq!(sm.chunks().len(), 3);
        assert_eq!(sm.chunks()[1].base().get(), 10_000 - 4 * 64);
        assert_eq!(sm.tail().unwrap().len(), 2);
        assert_eq!(sm.total_len(), 130);
    }

    #[test]
    fn zero_length_rejected() {
        assert!(StripMine::new(0, 1, 0, 64).is_err());
    }

    #[test]
    fn split_all_out_of_order() {
        // 64 = 2 granules of 32 exactly.
        let v = VectorSpec::new(0, 12, 64).unwrap();
        let (ooo, tail) = split_short(&v, 4, 3);
        assert_eq!(ooo.unwrap().len(), 64);
        assert!(tail.is_none());
    }

    #[test]
    fn split_all_in_order_when_family_outside_window() {
        let v = VectorSpec::new(0, 64, 100).unwrap(); // x = 6 > w = 4
        let (ooo, tail) = split_short(&v, 4, 3);
        assert!(ooo.is_none());
        assert_eq!(tail.unwrap().len(), 100);
    }

    #[test]
    fn split_too_short_vector() {
        let v = VectorSpec::new(0, 12, 20).unwrap(); // < one granule (32)
        let (ooo, tail) = split_short(&v, 4, 3);
        assert!(ooo.is_none());
        assert_eq!(tail.unwrap().len(), 20);
    }

    #[test]
    fn split_preserves_element_addresses() {
        let v = VectorSpec::new(5000, -12, 70).unwrap();
        let (ooo, tail) = split_short(&v, 4, 3);
        let ooo = ooo.unwrap();
        let tail = tail.unwrap();
        let mut addrs: Vec<u64> = ooo.iter().map(|a| a.get()).collect();
        addrs.extend(tail.iter().map(|a| a.get()));
        let want: Vec<u64> = v.iter().map(|a| a.get()).collect();
        assert_eq!(addrs, want);
    }
}
