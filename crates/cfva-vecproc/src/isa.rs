//! A minimal vector instruction set.
//!
//! Just enough to express the kernels that motivate strided access:
//! loads/stores with arbitrary stride and elementwise arithmetic, on a
//! small file of vector registers of a fixed architectural length.

use std::fmt;

use cfva_core::VectorSpec;

/// A vector register name (`v0`, `v1`, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VReg(pub u8);

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// One vector instruction.
///
/// Arithmetic wraps (`u64` modular): the model measures *timing*; data
/// flows are exercised with small integers where exactness holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VectorOp {
    /// `dst[i] = memory[vec.addr(i)]` — a strided vector load.
    Load {
        /// Destination register.
        dst: VReg,
        /// The constant-stride access pattern.
        vec: VectorSpec,
    },
    /// `memory[vec.addr(i)] = src[i]` — a strided vector store.
    Store {
        /// Source register.
        src: VReg,
        /// The constant-stride access pattern.
        vec: VectorSpec,
    },
    /// `dst[i] = a[i] + b[i]`.
    Add {
        /// Destination register.
        dst: VReg,
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
    },
    /// `dst[i] = a[i] · b[i]`.
    Mul {
        /// Destination register.
        dst: VReg,
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
    },
    /// `dst[i] = scalar · x[i] + y[i]` — the DAXPY inner step.
    Axpy {
        /// Destination register.
        dst: VReg,
        /// The scalar multiplier.
        scalar: u64,
        /// The scaled operand.
        x: VReg,
        /// The added operand.
        y: VReg,
    },
}

impl VectorOp {
    /// Whether the op touches memory (LOAD/STORE).
    pub const fn is_memory(&self) -> bool {
        matches!(self, VectorOp::Load { .. } | VectorOp::Store { .. })
    }

    /// The registers the op reads.
    pub fn sources(&self) -> Vec<VReg> {
        match *self {
            VectorOp::Load { .. } => vec![],
            VectorOp::Store { src, .. } => vec![src],
            VectorOp::Add { a, b, .. } | VectorOp::Mul { a, b, .. } => vec![a, b],
            VectorOp::Axpy { x, y, .. } => vec![x, y],
        }
    }

    /// The register the op writes, if any.
    pub fn destination(&self) -> Option<VReg> {
        match *self {
            VectorOp::Load { dst, .. }
            | VectorOp::Add { dst, .. }
            | VectorOp::Mul { dst, .. }
            | VectorOp::Axpy { dst, .. } => Some(dst),
            VectorOp::Store { .. } => None,
        }
    }
}

impl fmt::Display for VectorOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VectorOp::Load { dst, vec } => write!(f, "vload {dst}, [{vec}]"),
            VectorOp::Store { src, vec } => write!(f, "vstore {src}, [{vec}]"),
            VectorOp::Add { dst, a, b } => write!(f, "vadd {dst}, {a}, {b}"),
            VectorOp::Mul { dst, a, b } => write!(f, "vmul {dst}, {a}, {b}"),
            VectorOp::Axpy { dst, scalar, x, y } => {
                write!(f, "vaxpy {dst}, {scalar}, {x}, {y}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec64() -> VectorSpec {
        VectorSpec::new(0, 1, 64).unwrap()
    }

    #[test]
    fn memory_classification() {
        assert!(VectorOp::Load {
            dst: VReg(0),
            vec: vec64()
        }
        .is_memory());
        assert!(VectorOp::Store {
            src: VReg(0),
            vec: vec64()
        }
        .is_memory());
        assert!(!VectorOp::Add {
            dst: VReg(0),
            a: VReg(1),
            b: VReg(2)
        }
        .is_memory());
    }

    #[test]
    fn dataflow_accessors() {
        let op = VectorOp::Axpy {
            dst: VReg(3),
            scalar: 7,
            x: VReg(1),
            y: VReg(2),
        };
        assert_eq!(op.sources(), vec![VReg(1), VReg(2)]);
        assert_eq!(op.destination(), Some(VReg(3)));

        let st = VectorOp::Store {
            src: VReg(4),
            vec: vec64(),
        };
        assert_eq!(st.sources(), vec![VReg(4)]);
        assert_eq!(st.destination(), None);

        let ld = VectorOp::Load {
            dst: VReg(5),
            vec: vec64(),
        };
        assert!(ld.sources().is_empty());
        assert_eq!(ld.destination(), Some(VReg(5)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(VReg(3).to_string(), "v3");
        let op = VectorOp::Add {
            dst: VReg(0),
            a: VReg(1),
            b: VReg(2),
        };
        assert_eq!(op.to_string(), "vadd v0, v1, v2");
        let ld = VectorOp::Load {
            dst: VReg(1),
            vec: vec64(),
        };
        assert_eq!(ld.to_string(), "vload v1, [vector A1=0, S=1, L=64]");
    }
}
