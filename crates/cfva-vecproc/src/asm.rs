//! A tiny textual assembly for the vector ISA.
//!
//! One instruction per line; `#` starts a comment. Memory operands use
//! the access-pattern form `[base, stride, len]`:
//!
//! ```text
//! # y = 3*x + y, one register-length chunk
//! vload v0, [16, 12, 64]
//! vload v1, [4096, 1, 64]
//! vaxpy v2, 3, v0, v1
//! vstore v2, [4096, 1, 64]
//! ```

use std::error::Error;
use std::fmt;

use cfva_core::{ConfigError, VectorSpec};

use crate::isa::{VReg, VectorOp};

/// An assembly parse error, with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub kind: AsmErrorKind,
}

/// The kinds of assembly errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmErrorKind {
    /// Unknown mnemonic.
    UnknownOp(String),
    /// Wrong number or shape of operands for the mnemonic.
    BadOperands(String),
    /// A register name did not parse (`v<number>` expected).
    BadRegister(String),
    /// A numeric literal did not parse.
    BadNumber(String),
    /// The vector operand was rejected by [`VectorSpec`] validation.
    BadVector(ConfigError),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            AsmErrorKind::UnknownOp(op) => write!(f, "unknown instruction '{op}'"),
            AsmErrorKind::BadOperands(msg) => write!(f, "bad operands: {msg}"),
            AsmErrorKind::BadRegister(tok) => write!(f, "bad register '{tok}'"),
            AsmErrorKind::BadNumber(tok) => write!(f, "bad number '{tok}'"),
            AsmErrorKind::BadVector(e) => write!(f, "bad vector operand: {e}"),
        }
    }
}

impl Error for AsmError {}

/// Parses a program: one instruction per line, `#` comments, blank
/// lines ignored.
///
/// # Errors
///
/// The first [`AsmError`] encountered, with its line number.
///
/// # Examples
///
/// ```
/// use cfva_vecproc::asm::parse_program;
///
/// let prog = parse_program(
///     "vload v0, [0, 12, 64]\n\
///      vadd v1, v0, v0 # double it",
/// )?;
/// assert_eq!(prog.len(), 2);
/// # Ok::<(), cfva_vecproc::asm::AsmError>(())
/// ```
pub fn parse_program(source: &str) -> Result<Vec<VectorOp>, AsmError> {
    let mut ops = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        ops.push(parse_line(line, line_no)?);
    }
    Ok(ops)
}

fn parse_line(line: &str, line_no: usize) -> Result<VectorOp, AsmError> {
    let err = |kind| AsmError {
        line: line_no,
        kind,
    };
    let (mnemonic, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
    let operands = split_operands(rest);

    match mnemonic {
        "vload" | "vstore" => {
            if operands.len() != 2 {
                return Err(err(AsmErrorKind::BadOperands(format!(
                    "{mnemonic} needs a register and a [base, stride, len] pattern"
                ))));
            }
            let reg = parse_reg(&operands[0], line_no)?;
            let vec = parse_vector(&operands[1], line_no)?;
            Ok(if mnemonic == "vload" {
                VectorOp::Load { dst: reg, vec }
            } else {
                VectorOp::Store { src: reg, vec }
            })
        }
        "vadd" | "vmul" => {
            if operands.len() != 3 {
                return Err(err(AsmErrorKind::BadOperands(format!(
                    "{mnemonic} needs three registers"
                ))));
            }
            let dst = parse_reg(&operands[0], line_no)?;
            let a = parse_reg(&operands[1], line_no)?;
            let b = parse_reg(&operands[2], line_no)?;
            Ok(if mnemonic == "vadd" {
                VectorOp::Add { dst, a, b }
            } else {
                VectorOp::Mul { dst, a, b }
            })
        }
        "vaxpy" => {
            if operands.len() != 4 {
                return Err(err(AsmErrorKind::BadOperands(
                    "vaxpy needs dst, scalar, x, y".to_string(),
                )));
            }
            let dst = parse_reg(&operands[0], line_no)?;
            let scalar = parse_num(&operands[1], line_no)?;
            let x = parse_reg(&operands[2], line_no)?;
            let y = parse_reg(&operands[3], line_no)?;
            Ok(VectorOp::Axpy { dst, scalar, x, y })
        }
        other => Err(err(AsmErrorKind::UnknownOp(other.to_string()))),
    }
}

/// Splits operands on top-level commas (commas inside `[...]` group).
fn split_operands(rest: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    for c in rest.chars() {
        match c {
            '[' => {
                depth += 1;
                cur.push(c);
            }
            ']' => {
                depth -= 1;
                cur.push(c);
            }
            ',' if depth == 0 => {
                out.push(cur.trim().to_string());
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

fn parse_reg(tok: &str, line: usize) -> Result<VReg, AsmError> {
    tok.strip_prefix('v')
        .and_then(|n| n.parse::<u8>().ok())
        .map(VReg)
        .ok_or(AsmError {
            line,
            kind: AsmErrorKind::BadRegister(tok.to_string()),
        })
}

fn parse_num(tok: &str, line: usize) -> Result<u64, AsmError> {
    tok.parse::<u64>().map_err(|_| AsmError {
        line,
        kind: AsmErrorKind::BadNumber(tok.to_string()),
    })
}

fn parse_vector(tok: &str, line: usize) -> Result<VectorSpec, AsmError> {
    let inner = tok
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| AsmError {
            line,
            kind: AsmErrorKind::BadOperands(format!("expected [base, stride, len], got '{tok}'")),
        })?;
    let parts: Vec<&str> = inner.split(',').map(str::trim).collect();
    if parts.len() != 3 {
        return Err(AsmError {
            line,
            kind: AsmErrorKind::BadOperands(format!("expected three fields in '{tok}'")),
        });
    }
    let base = parse_num(parts[0], line)?;
    let stride = parts[1].parse::<i64>().map_err(|_| AsmError {
        line,
        kind: AsmErrorKind::BadNumber(parts[1].to_string()),
    })?;
    let len = parse_num(parts[2], line)?;
    VectorSpec::new(base, stride, len).map_err(|e| AsmError {
        line,
        kind: AsmErrorKind::BadVector(e),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_daxpy() {
        let prog = parse_program(
            "# daxpy\n\
             vload v0, [16, 12, 64]\n\
             vload v1, [4096, 1, 64]\n\
             vaxpy v2, 3, v0, v1\n\
             vstore v2, [4096, 1, 64]\n",
        )
        .unwrap();
        assert_eq!(prog.len(), 4);
        assert!(matches!(prog[0], VectorOp::Load { dst: VReg(0), .. }));
        assert!(matches!(
            prog[2],
            VectorOp::Axpy {
                dst: VReg(2),
                scalar: 3,
                x: VReg(0),
                y: VReg(1)
            }
        ));
        assert!(matches!(prog[3], VectorOp::Store { src: VReg(2), .. }));
    }

    #[test]
    fn negative_strides_parse() {
        let prog = parse_program("vload v0, [1000, -12, 32]").unwrap();
        if let VectorOp::Load { vec, .. } = &prog[0] {
            assert_eq!(vec.stride().get(), -12);
        } else {
            panic!("expected load");
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let prog = parse_program("\n  # nothing\n\nvadd v1, v2, v3  # trailing\n").unwrap();
        assert_eq!(prog.len(), 1);
    }

    #[test]
    fn unknown_op_reports_line() {
        let err = parse_program("vload v0, [0, 1, 8]\nfrobnicate v1").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(matches!(err.kind, AsmErrorKind::UnknownOp(_)));
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn operand_count_checked() {
        assert!(matches!(
            parse_program("vadd v1, v2").unwrap_err().kind,
            AsmErrorKind::BadOperands(_)
        ));
        assert!(matches!(
            parse_program("vaxpy v1, v2, v3").unwrap_err().kind,
            AsmErrorKind::BadOperands(_)
        ));
        assert!(matches!(
            parse_program("vload v0").unwrap_err().kind,
            AsmErrorKind::BadOperands(_)
        ));
    }

    #[test]
    fn bad_tokens_rejected() {
        assert!(matches!(
            parse_program("vadd w1, v2, v3").unwrap_err().kind,
            AsmErrorKind::BadRegister(_)
        ));
        assert!(matches!(
            parse_program("vaxpy v1, many, v2, v3").unwrap_err().kind,
            AsmErrorKind::BadNumber(_)
        ));
        assert!(matches!(
            parse_program("vload v0, (0, 1, 8)").unwrap_err().kind,
            AsmErrorKind::BadOperands(_)
        ));
        assert!(matches!(
            parse_program("vload v0, [0, 1]").unwrap_err().kind,
            AsmErrorKind::BadOperands(_)
        ));
    }

    #[test]
    fn vector_validation_propagates() {
        // Zero stride is invalid at the VectorSpec level.
        let err = parse_program("vload v0, [0, 0, 8]").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::BadVector(_)));
    }

    #[test]
    fn round_trip_with_machine() {
        use crate::machine::{Machine, MachineConfig};
        use cfva_core::mapping::XorMatched;
        use cfva_core::plan::Planner;
        use cfva_memsim::MemConfig;

        let prog = parse_program(
            "vload v0, [0, 1, 64]\n\
             vload v1, [4096, 1, 64]\n\
             vaxpy v2, 2, v0, v1\n\
             vstore v2, [8192, 1, 64]\n",
        )
        .unwrap();
        let mut m = Machine::new(
            MachineConfig::default(),
            Planner::matched(XorMatched::new(3, 4).unwrap()),
            MemConfig::new(3, 3).unwrap(),
        );
        m.run(&prog).unwrap();
        for i in 0..64u64 {
            assert_eq!(m.read_mem(8192 + i), 2 * i + (4096 + i));
        }
    }
}
