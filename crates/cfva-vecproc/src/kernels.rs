//! Workload kernels: the strided access patterns that motivate the
//! paper.
//!
//! Column accesses of row-major matrices produce strides equal to the
//! row length (a power of two for typical FFT/graphics sizes — the worst
//! case for plain interleaving); FFT butterflies walk strides `2^k` for
//! every stage `k`; DAXPY streams two unit-stride (or strided, for
//! banded solvers) vectors.

use cfva_core::{ConfigError, VectorSpec};

use crate::isa::{VReg, VectorOp};
use crate::stripmine::StripMine;

/// A row-major matrix layout in memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatrixLayout {
    base: u64,
    rows: u64,
    cols: u64,
}

impl MatrixLayout {
    /// Describes a `rows × cols` row-major matrix at `base`.
    pub const fn new(base: u64, rows: u64, cols: u64) -> Self {
        MatrixLayout { base, rows, cols }
    }

    /// Number of rows.
    pub const fn rows(&self) -> u64 {
        self.rows
    }

    /// Number of columns.
    pub const fn cols(&self) -> u64 {
        self.cols
    }

    /// Address of element `(r, c)`.
    pub const fn addr(&self, r: u64, c: u64) -> u64 {
        self.base + r * self.cols + c
    }

    /// Access pattern of row `r`: stride 1, `cols` elements.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`] (e.g. address overflow).
    pub fn row(&self, r: u64) -> Result<VectorSpec, ConfigError> {
        VectorSpec::new(self.addr(r, 0), 1, self.cols)
    }

    /// Access pattern of column `c`: stride `cols`, `rows` elements —
    /// the pattern that serialises on plain interleaving when `cols` is
    /// a power of two.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`].
    pub fn column(&self, c: u64) -> Result<VectorSpec, ConfigError> {
        VectorSpec::new(self.addr(0, c), self.cols as i64, self.rows)
    }

    /// Access pattern of the main diagonal: stride `cols + 1`.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`].
    pub fn diagonal(&self) -> Result<VectorSpec, ConfigError> {
        VectorSpec::new(
            self.addr(0, 0),
            self.cols as i64 + 1,
            self.rows.min(self.cols),
        )
    }

    /// Access pattern of the anti-diagonal: stride `cols − 1`, starting
    /// at the top-right corner.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`].
    pub fn anti_diagonal(&self) -> Result<VectorSpec, ConfigError> {
        VectorSpec::new(
            self.addr(0, self.cols - 1),
            self.cols as i64 - 1,
            self.rows.min(self.cols),
        )
    }
}

/// The strided operand patterns of one radix-2 FFT stage: at stage `k`
/// (of a `2^n`-point transform) butterflies pair elements `2^k` apart,
/// and a vectorised implementation loads the even and odd operand sets
/// with stride `2^{k+1}`.
///
/// Returns `(even, odd)` access patterns of `2^{n-1}` elements each.
///
/// # Errors
///
/// Propagates [`ConfigError`]; `stage` must satisfy `stage < n`.
pub fn fft_stage_operands(
    base: u64,
    n: u32,
    stage: u32,
) -> Result<(VectorSpec, VectorSpec), ConfigError> {
    if stage >= n {
        return Err(ConfigError::OutOfRange {
            what: "fft stage",
            value: stage as u64,
            constraint: "stage < log2(points)",
        });
    }
    let half = 1u64 << (n - 1);
    let dist = 1u64 << stage;
    // A strided view covering all butterflies of the stage: group g
    // spans 2^{stage+1} elements; evens sit at offsets 0..dist of each
    // group. For a strided load we take `half` elements with stride
    // 2^{stage+1} starting at each offset; stage patterns with the
    // largest stride (the late stages) are the interesting ones, so the
    // canonical "operand set" pattern uses offset 0 and dist.
    let stride = (2 * dist) as i64;
    let even = VectorSpec::new(base, stride, half)?;
    let odd = VectorSpec::new(base + dist, stride, half)?;
    Ok((even, odd))
}

/// Emits the vector program for one register-length DAXPY chunk:
/// `y = a·x + y` for strided `x` and `y`.
pub fn daxpy_chunk(a: u64, x: VectorSpec, y: VectorSpec) -> Vec<VectorOp> {
    vec![
        VectorOp::Load {
            dst: VReg(0),
            vec: x,
        },
        VectorOp::Load {
            dst: VReg(1),
            vec: y,
        },
        VectorOp::Axpy {
            dst: VReg(2),
            scalar: a,
            x: VReg(0),
            y: VReg(1),
        },
        VectorOp::Store {
            src: VReg(2),
            vec: y,
        },
    ]
}

/// Strip-mines a full `n`-element DAXPY into per-chunk programs.
///
/// # Errors
///
/// Propagates [`ConfigError`] from strip-mining.
pub fn daxpy_program(
    a: u64,
    x_base: u64,
    x_stride: i64,
    y_base: u64,
    y_stride: i64,
    n: u64,
    reg_len: u64,
) -> Result<Vec<Vec<VectorOp>>, ConfigError> {
    let xs = StripMine::new(x_base, x_stride, n, reg_len)?;
    let ys = StripMine::new(y_base, y_stride, n, reg_len)?;
    Ok(xs
        .chunks()
        .iter()
        .zip(ys.chunks())
        .map(|(x, y)| daxpy_chunk(a, *x, *y))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_patterns() {
        let m = MatrixLayout::new(1000, 64, 128);
        let row = m.row(3).unwrap();
        assert_eq!(row.base().get(), 1000 + 3 * 128);
        assert_eq!(row.stride().get(), 1);
        assert_eq!(row.len(), 128);

        let col = m.column(5).unwrap();
        assert_eq!(col.base().get(), 1005);
        assert_eq!(col.stride().get(), 128);
        assert_eq!(col.len(), 64);
        // Power-of-two column stride: the family the paper targets.
        assert_eq!(col.family().exponent(), 7);

        let diag = m.diagonal().unwrap();
        assert_eq!(diag.stride().get(), 129);
        assert_eq!(diag.family().exponent(), 0);
        assert_eq!(diag.len(), 64);

        let anti = m.anti_diagonal().unwrap();
        assert_eq!(anti.base().get(), 1000 + 127);
        assert_eq!(anti.stride().get(), 127);
    }

    #[test]
    fn matrix_addresses_consistent() {
        let m = MatrixLayout::new(0, 8, 16);
        let col = m.column(3).unwrap();
        for (r, addr) in col.iter().enumerate() {
            assert_eq!(addr.get(), m.addr(r as u64, 3));
        }
        assert_eq!(m.rows(), 8);
        assert_eq!(m.cols(), 16);
    }

    #[test]
    fn fft_stage_strides_are_power_of_two_families() {
        // 1024-point FFT: stages 0..10, strides 2, 4, ..., 1024.
        for stage in 0..10u32 {
            let (even, odd) = fft_stage_operands(0, 10, stage).unwrap();
            assert_eq!(even.len(), 512);
            assert_eq!(even.stride().get(), 2i64 << stage);
            assert_eq!(even.family().exponent(), stage + 1);
            assert_eq!(odd.base().get(), 1u64 << stage);
        }
        assert!(fft_stage_operands(0, 10, 10).is_err());
    }

    #[test]
    fn daxpy_chunk_shape() {
        let x = VectorSpec::new(0, 1, 64).unwrap();
        let y = VectorSpec::new(4096, 1, 64).unwrap();
        let prog = daxpy_chunk(3, x, y);
        assert_eq!(prog.len(), 4);
        assert!(prog[0].is_memory());
        assert!(prog[3].is_memory());
        assert_eq!(prog[2].destination(), Some(VReg(2)));
    }

    #[test]
    fn daxpy_program_strip_mines() {
        let chunks = daxpy_program(2, 0, 1, 10_000, 1, 200, 64).unwrap();
        assert_eq!(chunks.len(), 4); // 64+64+64+8
                                     // Final chunk covers the tail.
        if let VectorOp::Load { vec, .. } = &chunks[3][0] {
            assert_eq!(vec.len(), 8);
        } else {
            panic!("expected load");
        }
    }
}
