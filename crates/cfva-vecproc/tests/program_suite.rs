//! Assembled-program integration tests: realistic kernels through the
//! assembler, machine, planner and simulator together.

use cfva_core::mapping::{XorMatched, XorUnmatched};
use cfva_core::plan::{Planner, Strategy};
use cfva_memsim::MemConfig;
use cfva_vecproc::asm::parse_program;
use cfva_vecproc::{Machine, MachineConfig, VReg, WritePolicy};

fn matched_machine(chaining: bool) -> Machine {
    Machine::new(
        MachineConfig {
            reg_len: 64,
            chaining,
            ..MachineConfig::default()
        },
        Planner::matched(XorMatched::new(3, 3).unwrap()),
        MemConfig::new(3, 3).unwrap(),
    )
}

/// A strided triad (`z = a·x + y` with three different strides) written
/// in assembly, verified element by element.
#[test]
fn assembled_triad() {
    let prog = parse_program(
        "vload v0, [0, 3, 64]      # x, stride 3\n\
         vload v1, [1024, 5, 64]   # y, stride 5\n\
         vaxpy v2, 7, v0, v1\n\
         vstore v2, [8192, 1, 64]  # z, dense\n",
    )
    .unwrap();
    let mut m = matched_machine(false);
    for i in 0..64u64 {
        m.write_mem(3 * i, i + 1);
        m.write_mem(1024 + 5 * i, 10 * i);
    }
    m.run(&prog).unwrap();
    for i in 0..64u64 {
        assert_eq!(m.read_mem(8192 + i), 7 * (i + 1) + 10 * i, "element {i}");
    }
}

/// In-place update through memory: y = 2·y (load, axpy with itself,
/// store back to the same pattern).
#[test]
fn assembled_in_place_scale() {
    let prog = parse_program(
        "vload v0, [500, 12, 64]\n\
         vadd v1, v0, v0\n\
         vstore v1, [500, 12, 64]\n",
    )
    .unwrap();
    let mut m = matched_machine(false);
    for i in 0..64u64 {
        m.write_mem(500 + 12 * i, i);
    }
    m.run(&prog).unwrap();
    for i in 0..64u64 {
        assert_eq!(m.read_mem(500 + 12 * i), 2 * i, "element {i}");
    }
}

/// A two-pass pipeline reusing registers: results of pass 1 feed pass 2.
#[test]
fn assembled_register_reuse_across_passes() {
    let prog = parse_program(
        "vload v0, [0, 1, 64]\n\
         vmul v1, v0, v0\n\
         vstore v1, [4096, 1, 64]\n\
         vload v2, [4096, 1, 64]\n\
         vadd v3, v2, v0\n\
         vstore v3, [16384, 1, 64]\n",
    )
    .unwrap();
    let mut m = matched_machine(false);
    m.run(&prog).unwrap();
    for i in 0..64u64 {
        // memory reads as address: v0[i] = i; v1 = i²; v3 = i² + i.
        assert_eq!(m.read_mem(16384 + i), i * i + i, "element {i}");
    }
}

/// The same program runs identically on matched and unmatched memories
/// (results are architecture-invariant; only timing differs).
#[test]
fn results_invariant_across_memories() {
    let prog = parse_program(
        "vload v0, [6, 16, 32]\n\
         vadd v1, v0, v0\n\
         vstore v1, [65536, 1, 32]\n",
    )
    .unwrap();

    let mut matched = Machine::new(
        MachineConfig {
            reg_len: 32,
            ..MachineConfig::default()
        },
        Planner::matched(XorMatched::new(2, 3).unwrap()),
        MemConfig::new(2, 2).unwrap(),
    );
    let mut unmatched = Machine::new(
        MachineConfig {
            reg_len: 32,
            ..MachineConfig::default()
        },
        Planner::unmatched(XorUnmatched::new(2, 3, 7).unwrap()),
        MemConfig::new(4, 2).unwrap(),
    );
    let sm = matched.run(&prog).unwrap();
    let su = unmatched.run(&prog).unwrap();
    for i in 0..32u64 {
        assert_eq!(matched.read_mem(65536 + i), unmatched.read_mem(65536 + i));
    }
    // Family 4 is outside the matched window [0, 3] (conflicts, slower)
    // but inside the unmatched window [0, 7] (conflict free) — the
    // Section 4 motivation, visible end to end.
    assert!(sm.ops[0].conflicts > 0);
    assert_eq!(su.ops[0].conflicts, 0);
    assert!(sm.ops[0].cycles > su.ops[0].cycles);
}

/// Chained vs unchained assembled program: same data, fewer cycles.
#[test]
fn chaining_through_assembler() {
    let prog = parse_program(
        "vload v0, [0, 12, 64]\n\
         vload v1, [4096, 1, 64]\n\
         vaxpy v2, 3, v0, v1\n",
    )
    .unwrap();
    let mut plain = matched_machine(false);
    let mut chained = matched_machine(true);
    let sp = plain.run(&prog).unwrap();
    let sc = chained.run(&prog).unwrap();
    assert_eq!(sp.total_cycles - sc.total_cycles, 64);
    assert_eq!(
        plain.reg(VReg(2)).unwrap().values().unwrap(),
        chained.reg(VReg(2)).unwrap().values().unwrap()
    );
}

/// FIFO register file + canonical in-order strategy runs the whole
/// pipeline (the pre-1992 design point still works end to end).
#[test]
fn legacy_fifo_pipeline() {
    let prog = parse_program(
        "vload v0, [0, 8, 64]\n\
         vadd v1, v0, v0\n\
         vstore v1, [32768, 1, 64]\n",
    )
    .unwrap();
    let mut m = Machine::new(
        MachineConfig {
            reg_len: 64,
            write_policy: WritePolicy::Fifo,
            strategy: Strategy::Canonical,
            ..MachineConfig::default()
        },
        Planner::matched(XorMatched::new(3, 3).unwrap()),
        MemConfig::new(3, 3).unwrap(),
    );
    // Stride 8 = 2^3 = family s: canonical access is conflict free and
    // returns in order, so the FIFO register suffices.
    let stats = m.run(&prog).unwrap();
    assert_eq!(stats.ops[0].conflicts, 0);
    for i in 0..64u64 {
        assert_eq!(m.read_mem(32768 + i), 2 * (8 * i));
    }
}
