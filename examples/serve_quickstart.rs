//! Plan/measure-as-a-service in a dozen lines: stand up the
//! work-stealing session pool behind a [`Service`], submit typed
//! requests against maps named by registry spec strings, and reap the
//! tickets — including the backpressure path a production client must
//! handle.
//!
//! ```text
//! cargo run --release --example serve_quickstart
//! ```

use cfva::core::plan::Strategy;
use cfva::VectorSpec;
use cfva_serve::api::{Estimator, Request, Response, ServeError};
use cfva_serve::service::{Service, ServiceConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two workers, each owning long-lived per-spec sessions; at most
    // eight requests may wait in the admission queue before clients
    // are told to back off.
    let service = Service::new(ServiceConfig::with_workers(2).queue_capacity(8));

    // Fire a mixed burst: measurements on two different maps (routed
    // to spec-affine workers) plus an efficiency estimate. Tickets are
    // reaped later, in any order.
    let measure = service.submit(Request::Measure {
        spec: "xor-matched:t=3,s=3".into(),
        vec: VectorSpec::new(16, 12, 64)?,
        strategy: Strategy::Auto,
    })?;
    let sweep = service.submit(Request::FamilySweep {
        spec: "skewed:m=3,d=1".into(),
        len: 64,
        max_x: 4,
        sigma: 3,
    })?;
    let eta = service.submit(Request::Efficiency {
        spec: "xor-matched:t=3,s=3".into(),
        strategy: Strategy::Auto,
        len: 64,
        estimator: Estimator::Stratified {
            max_x: 8,
            per_family: 4,
        },
        seed: 1992,
    })?;

    if let Response::Measured(Some(stats)) = measure.wait()? {
        // Stride 12 is inside the matched window: minimum latency.
        println!("stride 12 latency: {} cycles (T + L + 1)", stats.latency);
        assert_eq!(stats.latency, 8 + 64 + 1);
    }
    if let Response::FamilySweep(rows) = sweep.wait()? {
        for row in rows {
            println!(
                "skewed map, family {}: stride {:>3} -> {} cycles ({} conflicts)",
                row.x, row.stride, row.latency, row.conflicts
            );
        }
    }
    if let Response::Efficiency(value) = eta.wait()? {
        println!("xor-matched efficiency (stratified): {value:.3}");
    }

    // Backpressure is a typed, recoverable signal — a full admission
    // queue rejects instead of queueing unboundedly.
    let burst: Vec<_> = (0..64)
        .map(|i| {
            service.submit(Request::Measure {
                spec: "interleaved:m=3".into(),
                vec: VectorSpec::new(i, 8, 4096).expect("valid"),
                strategy: Strategy::Auto,
            })
        })
        .collect();
    let rejected = burst
        .iter()
        .filter(|r| matches!(r, Err(ServeError::Overloaded { .. })))
        .count();
    println!("burst of 64 against a queue of 8: {rejected} rejected with Overloaded");
    for ticket in burst.into_iter().flatten() {
        ticket.wait()?;
    }

    // Drains everything still in flight, then joins the workers.
    service.shutdown();
    println!("service drained and shut down cleanly");
    Ok(())
}
