//! Interactive stride explorer: show how any stride behaves on a
//! matched or unmatched memory — family, window membership, chosen
//! ordering, subsequences, module trace and simulated latency.
//!
//! ```text
//! cargo run --example stride_explorer -- <stride> [base] [len] [t] [s] [y]
//! cargo run --example stride_explorer -- 12
//! cargo run --example stride_explorer -- 192 0 32 2 3 7     # Figure 7 memory
//! ```

use cfva::core::analysis;
use cfva::core::mapping::MapSpec;
use cfva::core::plan::Strategy;
use cfva::core::window::{MatchedWindow, UnmatchedWindow};
use cfva::VectorSpec;
use cfva_bench::runner::BatchRunner;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: stride_explorer <stride> [base=16] [len=64] [t=3] [s=3] [y]");
        eprintln!("       (give y to use the unmatched two-level memory with M = T^2)");
        std::process::exit(2);
    }
    let stride: i64 = args[0].parse()?;
    let base: u64 = args.get(1).map_or(Ok(16), |s| s.parse())?;
    let len: u64 = args.get(2).map_or(Ok(64), |s| s.parse())?;
    let t: u32 = args.get(3).map_or(Ok(3), |s| s.parse())?;
    let s: u32 = args.get(4).map_or(Ok(3), |s| s.parse())?;
    let y: Option<u32> = match args.get(5) {
        Some(v) => Some(v.parse()?),
        None => None,
    };

    let vec = VectorSpec::new(base, stride, len)?;
    let x = vec.family().exponent();
    println!("access: {vec}");
    println!("stride {} = {}", stride, vec.stride());

    // The memory scheme is named by a registry spec string — the same
    // `--map` grammar the experiments binary takes.
    let spec: MapSpec = match y {
        Some(y) => format!("xor-unmatched:t={t},s={s},y={y}").parse()?,
        None => format!("xor-matched:t={t},s={s}").parse()?,
    };
    println!("map spec: {spec}");
    match y {
        Some(y) => {
            if let Some(lambda) = vec.lambda() {
                let w = UnmatchedWindow::new(t, s, y, lambda);
                println!(
                    "window: {w} — family x = {x} is {}",
                    if w.contains(vec.family()) {
                        "INSIDE (conflict free)"
                    } else {
                        "OUTSIDE"
                    }
                );
                if let Some(kind) = w.replay_kind(vec.family()) {
                    println!("replay keyed by: {kind}");
                }
            }
        }
        None => {
            if let Some(lambda) = vec.lambda() {
                let w = MatchedWindow::new(t, s, lambda);
                println!(
                    "window: {w} — family x = {x} is {}",
                    if w.contains(vec.family()) {
                        "INSIDE (conflict free)"
                    } else {
                        "OUTSIDE"
                    }
                );
            }
        }
    };

    // One session for all three strategies: the plan is built into the
    // session's reused buffers, the stats into its stats scratch.
    let mut session = BatchRunner::from_spec(&spec)?;
    let mem = session.mem();
    println!("memory: {mem}");
    println!(
        "period P_x = {} elements",
        session.planner().map().period(vec.family())
    );
    for strategy in [
        Strategy::Canonical,
        Strategy::Subsequence,
        Strategy::ConflictFree,
    ] {
        match session.measure_full(&vec, strategy) {
            Some((plan, stats)) => {
                let mods: Vec<u64> = plan.iter().take(16).map(|e| e.module().get()).collect();
                println!(
                    "\n{strategy:>13}: latency {:>5} cycles ({} conflicts, {} stalls)",
                    stats.latency, stats.conflicts, stats.stall_cycles
                );
                println!("               first modules: {mods:?}");
            }
            None => match session.planner().plan(&vec, strategy) {
                Err(e) => println!("\n{strategy:>13}: not applicable — {e}"),
                Ok(_) => unreachable!("measure_full plans whenever the planner can"),
            },
        }
    }

    println!(
        "\nconflict-free minimum would be T + L + 1 = {} cycles",
        analysis::conflict_free_latency(mem.t_cycles(), len)
    );
    Ok(())
}
