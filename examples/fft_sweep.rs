//! FFT butterfly strides across all stages of a 1024-point transform —
//! the classic all-power-of-two workload that breaks plain interleaving
//! at every late stage, swept over four memory schemes.
//!
//! Stage `k` of a radix-2 FFT loads its operand sets with stride
//! `2^{k+1}`: ten stages walk families 1 through 10. A memory system is
//! only as good as its worst stage, because every stage runs once per
//! transform.
//!
//! ```text
//! cargo run --example fft_sweep
//! ```

use cfva::core::plan::Strategy;
use cfva::vecproc::kernels::fft_stage_operands;
use cfva_bench::runner::BatchRunner;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n_log2 = 10u32; // 1024-point FFT
    let half = 1u64 << (n_log2 - 1); // 512 operand pairs per stage

    // Register length 128 -> strip-mine each operand set into 4 chunks.
    let reg_len = 128u64;

    // λ = 7 -> recommended s = 4, y = 9. Each scheme is one registry
    // spec string and one long-lived session: all ten stages × four
    // chunks run through its buffers.
    let mut schemes: Vec<(&str, BatchRunner)> = vec![
        (
            "interleaved M=8",
            BatchRunner::from_spec_str("interleaved:m=3")?,
        ),
        (
            "pseudo-random M=8",
            BatchRunner::from_spec_str("pseudo-random:m=3")?,
        ),
        (
            "xor OOO M=8",
            BatchRunner::from_spec_str("xor-matched:t=3,s=4")?,
        ),
        (
            "xor OOO M=64",
            BatchRunner::from_spec_str("xor-unmatched:t=3,s=4,y=9")?,
        ),
    ];

    println!("1024-point FFT: per-stage latency to load one operand set");
    println!(
        "({half} elements strip-mined into {}-element accesses; floor per chunk = {})\n",
        reg_len,
        8 + reg_len + 1
    );

    print!("{:<7}", "stage");
    for (name, _) in &schemes {
        print!("{name:>19}");
    }
    println!();
    println!("{}", "-".repeat(7 + 19 * schemes.len()));

    let mut totals = vec![0u64; schemes.len()];
    for stage in 0..n_log2 {
        let (even, _odd) = fft_stage_operands(0, n_log2, stage)?;
        print!("{:<7}", format!("{} (x={})", stage, stage + 1));
        for (i, (_, session)) in schemes.iter_mut().enumerate() {
            // Strip-mine the operand set into register-length chunks.
            let chunks = cfva::vecproc::stripmine::StripMine::new(
                even.base().get(),
                even.stride().get(),
                even.len(),
                reg_len,
            )?;
            let mut stage_cycles = 0u64;
            for chunk in chunks.chunks() {
                let stats = session.measure(chunk, Strategy::Auto).expect("auto plans");
                stage_cycles += stats.latency;
            }
            totals[i] += stage_cycles;
            print!("{stage_cycles:>19}");
        }
        println!();
    }
    println!("{}", "-".repeat(7 + 19 * schemes.len()));
    print!("{:<7}", "total");
    for t in &totals {
        print!("{t:>19}");
    }
    println!("\n");
    println!("The matched window [0,4] covers the early stages; the unmatched");
    println!("memory (M = T² = 64, window [0,9]) runs the whole transform at the");
    println!("floor except the final stage; pseudo-random interleaving degrades");
    println!("every stage a little instead of a few stages badly.");
    Ok(())
}
