//! Full-processor demo: strip-mined DAXPY (`y = a·x + y`) on the
//! decoupled access/execute machine, chained vs unchained, with a
//! strided `x` operand that conflicts under in-order access.
//!
//! The machine runs every LOAD/STORE through the batch plan→simulate
//! hot path: one long-lived memory system plus reused plan/stats
//! buffers per machine (see `cfva_vecproc::Machine`).
//!
//! ```text
//! cargo run --example decoupled_daxpy
//! ```

use cfva::core::mapping::MapSpec;
use cfva::core::plan::{Planner, Strategy};
use cfva::memsim::MemConfig;
use cfva::vecproc::kernels::daxpy_chunk;
use cfva::vecproc::stripmine::StripMine;
use cfva::vecproc::{Machine, MachineConfig, WritePolicy};

fn build_machine(
    chaining: bool,
    strategy: Strategy,
) -> Result<Machine, Box<dyn std::error::Error>> {
    // The memory scheme by registry spec: L=128 -> s=4.
    let spec: MapSpec = "xor-matched:t=3,s=4".parse()?;
    Ok(Machine::new(
        MachineConfig {
            reg_len: 128,
            chaining,
            strategy,
            write_policy: WritePolicy::RandomAccess,
            ..MachineConfig::default()
        },
        Planner::from_spec(&spec)?,
        MemConfig::from_spec(&spec)?,
    ))
}

fn run_daxpy(machine: &mut Machine, n: u64) -> Result<u64, Box<dyn std::error::Error>> {
    // x strided by 12 (a banded-matrix column sweep), y unit stride.
    let a = 3u64;
    let xs = StripMine::new(0, 12, n, 128)?;
    let ys = StripMine::new(1 << 22, 1, n, 128)?;
    // Fill memory with known data.
    for chunk in xs.chunks() {
        for addr in chunk.iter() {
            machine.write_mem(addr.get(), addr.get() % 1000);
        }
    }
    let mut total = 0;
    for (x, y) in xs.chunks().iter().zip(ys.chunks()) {
        let stats = machine.run(&daxpy_chunk(a, *x, *y))?;
        total = stats.total_cycles;
    }
    Ok(total)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 512u64; // 4 register-length chunks

    println!("DAXPY y = 3·x + y, n = {n}, x stride 12, register length 128");
    println!("memory: M = T = 8 (t = 3), XOR map s = 4\n");

    let mut rows = Vec::new();
    for (name, chaining, strategy) in [
        ("in-order, unchained", false, Strategy::Canonical),
        ("out-of-order, unchained", false, Strategy::Auto),
        ("out-of-order, chained", true, Strategy::Auto),
    ] {
        let mut machine = build_machine(chaining, strategy)?;
        let cycles = run_daxpy(&mut machine, n)?;
        rows.push((name, cycles));
    }

    println!("{:<26} {:>12}", "configuration", "total cycles");
    println!("{}", "-".repeat(40));
    let baseline = rows[0].1;
    for (name, cycles) in &rows {
        println!(
            "{:<26} {:>12}   ({:.2}x)",
            name,
            cycles,
            baseline as f64 / *cycles as f64
        );
    }

    // Correctness check: compare against a scalar computation.
    let mut machine = build_machine(true, Strategy::Auto)?;
    run_daxpy(&mut machine, n)?;
    for i in [0u64, 1, 100, 511] {
        let x_addr = 12 * i;
        let y_addr = (1 << 22) + i;
        let expect = 3 * (x_addr % 1000) + y_addr; // y was uninitialised: reads as address
        assert_eq!(machine.read_mem(y_addr), expect, "element {i}");
    }
    println!("\nresult verified against scalar reference for sampled elements");
    Ok(())
}
