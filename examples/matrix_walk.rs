//! The motivating workload: row, column and diagonal walks over a
//! row-major matrix, comparing plain interleaving, skewing, and the
//! paper's scheme on matched and unmatched memories.
//!
//! Column accesses of a 128-wide matrix have stride 128 = 2^7 — the
//! pathological case for low-order interleaving (every element lands in
//! one module). A matched memory's window `[0, λ−t]` cannot stretch to
//! family 7 while keeping rows (family 0) conflict free; the unmatched
//! memory of Section 4 covers `[0, 2(λ−t)+1] = [0, 7]` and serves both.
//!
//! ```text
//! cargo run --example matrix_walk
//! ```

use cfva::core::plan::Strategy;
use cfva::vecproc::kernels::MatrixLayout;
use cfva::VectorSpec;
use cfva_bench::runner::BatchRunner;

fn measure(session: &mut BatchRunner, vec: &VectorSpec, strategy: Strategy) -> String {
    match session.measure(vec, strategy) {
        Some(stats) => format!("{:>6}", stats.latency),
        None => "   n/a".to_string(),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 64x128 row-major matrix; register length 64 (λ = 6), T = 8.
    let matrix = MatrixLayout::new(0, 64, 128);

    // Recommended parameters: s = λ − t = 3, y = 2(λ−t) + 1 = 7. Each
    // scheme is a registry spec string (matched memory by default; the
    // unmatched map brings its own M = T² geometry) and one long-lived
    // session; every walk below reuses the scheme's system and plan
    // buffers.
    let mut interleaved = BatchRunner::from_spec_str("interleaved:m=3")?;
    let mut skewed = BatchRunner::from_spec_str("skewed:m=3,d=1")?;
    let mut matched = BatchRunner::from_spec_str("xor-matched:t=3,s=3")?;
    let mut unmatched = BatchRunner::from_spec_str("xor-unmatched:t=3,s=3,y=7")?;

    let walks: Vec<(&str, VectorSpec)> = vec![
        ("row 5        (stride   1, x=0)", matrix.row(5)?),
        ("column 9     (stride 128, x=7)", matrix.column(9)?),
        ("diagonal     (stride 129, x=0)", matrix.diagonal()?),
        ("anti-diag    (stride 127, x=0)", matrix.anti_diagonal()?),
        (
            "banded sweep (stride  96, x=5)",
            VectorSpec::new(matrix.addr(0, 3), 96, 64)?,
        ),
        (
            "col pairs    (stride 256, x=8)",
            VectorSpec::new(matrix.addr(0, 3), 256, 64)?,
        ),
    ];

    println!("64x128 row-major matrix; latency in cycles");
    println!("(conflict-free floor T+L+1: 137 for the 128-element rows, 73 for the rest)\n");
    println!(
        "{:<32} {:>7} {:>7} {:>9} {:>11}",
        "access pattern", "intlv-8", "skew-8", "OOO M=8", "OOO M=64"
    );
    println!("{}", "-".repeat(70));
    for (name, vec) in &walks {
        println!(
            "{:<32} {:>7} {:>7} {:>9} {:>11}",
            name,
            measure(&mut interleaved, vec, Strategy::Canonical),
            measure(&mut skewed, vec, Strategy::Canonical),
            measure(&mut matched, vec, Strategy::Auto),
            measure(&mut unmatched, vec, Strategy::Auto),
        );
    }

    println!("\nInterleaving serialises the power-of-two column stride onto one");
    println!("module (~L·T = 512 cycles). The matched window [0, 3] rescues the");
    println!("banded strides but not family 7; the unmatched memory (M = T² = 64,");
    println!("window [0, 7]) serves rows AND columns at the 73-cycle floor.");
    println!("Family 8 stays degraded everywhere — the window is finite, as the");
    println!("paper's Section 5E cost argument demands.");
    Ok(())
}
