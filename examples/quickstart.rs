//! Five-minute tour: pick a map *at runtime* by spec string, plan a
//! conflict-free access, simulate it through a reusable measurement
//! session, and check the latency is the theoretical minimum.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use cfva::core::mapping::MapSpec;
use cfva::core::plan::Strategy;
use cfva::VectorSpec;
use cfva_bench::runner::BatchRunner;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's running example: a matched memory of M = T = 8
    // modules (t = 3) with the XOR map shifted by s = 3, and a vector
    // of 64 elements with stride 12 starting at address 16. The map is
    // named by a registry spec string — swap it for any other
    // registered scheme (`interleaved:m=3`, `skewed:m=3,d=1`,
    // `custom-gf2:matrix=@my_map.gf2`, ...) without recompiling.
    let spec: MapSpec = "xor-matched:t=3,s=3".parse()?;
    let vec = VectorSpec::new(16, 12, 64)?;
    println!("map spec: {spec}");
    println!("access:   {vec} (stride {} => {})", 12, vec.stride());

    // One session owns the planner, the memory system, and the plan
    // scratch; every measurement below reuses them.
    let mut session = BatchRunner::from_spec(&spec)?;
    let mem = session.mem();
    println!("memory:   {mem}");

    // In order (what every pre-1992 machine did): the access conflicts.
    let stats = session
        .measure(&vec, Strategy::Canonical)
        .expect("canonical always plans");
    println!("\nin-order access:      {stats}");

    // The paper's out-of-order replay: conflict free, minimum latency.
    let stats = session
        .measure(&vec, Strategy::ConflictFree)
        .expect("family 2 is inside the window");
    println!("out-of-order replay:  {stats}");
    println!(
        "minimum possible:     T + L + 1 = {} cycles",
        mem.t_cycles() + vec.len() + 1
    );
    assert_eq!(stats.latency, mem.t_cycles() + vec.len() + 1);

    // The first few requests, showing the reordering.
    let replay = session.planner().plan(&vec, Strategy::ConflictFree)?;
    assert!(replay.is_conflict_free(mem.t_cycles()));
    println!("\nfirst 8 requests of the replay order:");
    for entry in replay.entries().iter().take(8) {
        println!(
            "  element {:>2}  address {:>4}  module {}",
            entry.element(),
            entry.addr(),
            entry.module()
        );
    }
    Ok(())
}
