//! Five-minute tour: map a vector, plan a conflict-free access,
//! simulate it, and check the latency is the theoretical minimum.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use cfva::core::mapping::XorMatched;
use cfva::core::plan::{Planner, Strategy};
use cfva::memsim::{MemConfig, MemorySystem};
use cfva::VectorSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's running example: a matched memory of M = T = 8
    // modules (t = 3) with the XOR map shifted by s = 3, and a vector
    // of 64 elements with stride 12 starting at address 16.
    let map = XorMatched::new(3, 3)?;
    let vec = VectorSpec::new(16, 12, 64)?;
    println!("memory:  {map}");
    println!("access:  {vec} (stride {} => {})", 12, vec.stride());

    let planner = Planner::matched(map);
    let mem = MemConfig::new(3, 3)?;

    // In order (what every pre-1992 machine did): the access conflicts.
    let canonical = planner.plan(&vec, Strategy::Canonical)?;
    let stats = MemorySystem::new(mem).run_plan(&canonical);
    println!("\nin-order access:      {stats}");

    // The paper's out-of-order replay: conflict free, minimum latency.
    let replay = planner.plan(&vec, Strategy::ConflictFree)?;
    assert!(replay.is_conflict_free(mem.t_cycles()));
    let stats = MemorySystem::new(mem).run_plan(&replay);
    println!("out-of-order replay:  {stats}");
    println!(
        "minimum possible:     T + L + 1 = {} cycles",
        mem.t_cycles() + vec.len() + 1
    );
    assert_eq!(stats.latency, mem.t_cycles() + vec.len() + 1);

    // The first few requests, showing the reordering.
    println!("\nfirst 8 requests of the replay order:");
    for entry in replay.entries().iter().take(8) {
        println!(
            "  element {:>2}  address {:>4}  module {}",
            entry.element(),
            entry.addr(),
            entry.module()
        );
    }
    Ok(())
}
